#include "cost/expected_cost_evaluator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <functional>
#include <limits>
#include <thread>

#include "common/stats.h"
#include "common/strings.h"
#include "metric/euclidean_space.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "uncertain/sampler.h"

namespace ukc {
namespace cost {

namespace {

// Distance from `from` to the nearest row of the gathered block
// `centers` (count rows of length dim) under `norm`.
double FlatDistanceToSet(metric::Norm norm, const double* from,
                         const double* centers, size_t count, size_t dim) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < count; ++c) {
    const double d =
        metric::NormDistanceKernel(norm, from, centers + c * dim, dim);
    if (d < best) best = d;
  }
  return best;
}

}  // namespace

ExpectedCostEvaluator::ScratchGuard::ScratchGuard(
    ExpectedCostEvaluator* evaluator)
    : evaluator_(evaluator) {
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id expected{};  // No owner.
  if (!evaluator_->owner_.compare_exchange_strong(
          expected, self, std::memory_order_acquire) &&
      expected != self) {
    UKC_CHECK(false) << "ExpectedCostEvaluator used concurrently from two "
                        "threads; it is mutable scratch — create one "
                        "evaluator per thread (see "
                        "cost::ParallelCandidateEvaluator)";
  }
  // Only the owning thread touches the depth counter.
  ++evaluator_->owner_depth_;
}

ExpectedCostEvaluator::ScratchGuard::~ScratchGuard() {
  if (--evaluator_->owner_depth_ == 0) {
    evaluator_->owner_.store(std::thread::id(), std::memory_order_release);
  }
}

namespace {

// Maps a double to a uint64 whose unsigned order matches the double's
// numeric order (the standard sign-flip transform).
inline uint64_t OrderedBits(double v) {
  const uint64_t bits = std::bit_cast<uint64_t>(v);
  return (bits & (1ULL << 63)) ? ~bits : (bits | (1ULL << 63));
}

// Below this, std::sort's cache behavior beats the fixed radix overhead
// (four 65536-entry histograms).
constexpr size_t kRadixSortCutover = 2048;

// Running P = Π_{F_i > 0} F_i over the sweep, as a mantissa/exponent
// pair renormalized lazily when the mantissa leaves [2^-16, 2^16):
// power-of-two scaling is exact, so lazy renormalization changes no
// bits, and the pair cannot underflow the way a plain double product
// over many small CDFs would. The band is kept narrow so that even a
// pathological new/old ratio (old as small as ~1e-290 still satisfies
// Build's p > 0) multiplies a mantissa ≤ 2^16 and stays finite. The
// unclamped ratio keeps the telescoping exact even when round-off
// pushes a final CDF past 1. All four sweep variants (full sort-sweep,
// swap-base snapshot, the snapshot pre-application, and the tail
// merge) share this.
struct CdfProduct {
  size_t zeros;  // Variables still at F_i = 0 (product reads as 0).
  double mantissa = 1.0;
  int exponent = 0;

  explicit CdfProduct(size_t variables) : zeros(variables) {}

  /// Folds one CDF step of a variable: old -> new (new > old >= 0).
  void Apply(double old_cdf, double new_cdf) {
    if (old_cdf == 0.0) {
      ApplyRatio(/*from_zero=*/true, new_cdf);
    } else {
      ApplyRatio(/*from_zero=*/false, new_cdf / old_cdf);
    }
  }

  /// The primitive Apply reduces to, shared with the segmented sweep's
  /// combine (which precomputes the ratios in parallel): one multiply
  /// plus the lazy renormalization. Keeping both paths on this exact
  /// arithmetic is what makes the segmented sweep bitwise identical to
  /// the serial scan.
  void ApplyRatio(bool from_zero, double ratio) {
    if (from_zero) --zeros;
    mantissa *= ratio;
    if (mantissa < 0x1p-16 || mantissa >= 0x1p16) {
      int shift;
      mantissa = std::frexp(mantissa, &shift);
      exponent += shift;
    }
  }

  /// Π F_i, or 0 while some variable's CDF is still empty.
  double Value() const {
    return zeros > 0 ? 0.0 : std::ldexp(mantissa, exponent);
  }
};

}  // namespace

void ExpectedCostEvaluator::SortEventsByValue() {
  const size_t count = events_.size();
  if (count < kRadixSortCutover) {
    // The (value, location) tiebreak spells out what the stable radix
    // below does implicitly (every fill writes ascending locations), so
    // the two regimes — and the segmented engine's parallel radix —
    // produce one permutation.
    std::sort(events_.begin(), events_.end(),
              [](const Event& a, const Event& b) {
                return a.value != b.value ? a.value < b.value
                                          : a.location < b.location;
              });
    return;
  }
  // LSD radix, 4 passes of 16 bits over the order-preserving key. One
  // histogram pass, then per-digit scatters ping-ponging between the
  // event buffer and its scratch twin; digit positions where every key
  // agrees are skipped (typical for the high exponent bits of a
  // distance distribution).
  constexpr int kPasses = 4;
  constexpr size_t kBuckets = 65536;
  events_scratch_.resize(count);
  radix_counts_.assign(kPasses * kBuckets, 0);
  for (const Event& event : events_) {
    const uint64_t key = OrderedBits(event.value);
    for (int p = 0; p < kPasses; ++p) {
      ++radix_counts_[p * kBuckets + ((key >> (16 * p)) & 0xFFFF)];
    }
  }
  Event* src = events_.data();
  Event* dst = events_scratch_.data();
  bool swapped = false;
  for (int p = 0; p < kPasses; ++p) {
    uint32_t* counts = radix_counts_.data() + p * kBuckets;
    const uint64_t first_digit = (OrderedBits(src[0].value) >> (16 * p)) & 0xFFFF;
    if (counts[first_digit] == count) continue;  // All keys share this digit.
    uint32_t running = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      const uint32_t c = counts[b];
      counts[b] = running;
      running += c;
    }
    for (size_t i = 0; i < count; ++i) {
      const uint64_t digit = (OrderedBits(src[i].value) >> (16 * p)) & 0xFFFF;
      dst[counts[digit]++] = src[i];
    }
    std::swap(src, dst);
    swapped = !swapped;
  }
  if (swapped) events_.swap(events_scratch_);
}

void ExpectedCostEvaluator::RadixSortEventsByValue(ThreadPool* pool,
                                                   bool track_positions) {
  const size_t count = events_.size();
  if (track_positions) {
    perm_.resize(count);
    for (size_t i = 0; i < count; ++i) perm_[i] = static_cast<uint32_t>(i);
    perm_scratch_.resize(count);
  }
  if (count <= 1) return;
  constexpr int kPasses = 4;
  constexpr size_t kBuckets = 65536;
  const size_t shards =
      pool != nullptr ? static_cast<size_t>(pool->num_threads()) : 1;
  events_scratch_.resize(count);
  const auto run_phase = [&](const auto& fn) {
    if (pool != nullptr && shards > 1) {
      pool->ParallelFor(shards, [&fn](int, size_t s) { fn(s); });
    } else {
      for (size_t s = 0; s < shards; ++s) fn(s);
    }
  };
  const auto shard_begin = [&](size_t s) { return count * s / shards; };

  // Per-shard histograms of every pass over the initial arrangement.
  // The per-pass TOTALS are arrangement-invariant (they only count
  // digits), so the skip decision below stays valid across scatters;
  // the per-shard splits go stale after the first scatter and are
  // recomputed per remaining pass.
  shard_counts_.assign(shards * kPasses * kBuckets, 0);
  run_phase([&](size_t s) {
    uint32_t* counts = shard_counts_.data() + s * kPasses * kBuckets;
    const size_t end = shard_begin(s + 1);
    for (size_t i = shard_begin(s); i < end; ++i) {
      const uint64_t key = OrderedBits(events_[i].value);
      for (int p = 0; p < kPasses; ++p) {
        ++counts[p * kBuckets + ((key >> (16 * p)) & 0xFFFF)];
      }
    }
  });
  radix_counts_.assign(kPasses * kBuckets, 0);
  for (size_t s = 0; s < shards; ++s) {
    const uint32_t* counts = shard_counts_.data() + s * kPasses * kBuckets;
    for (size_t b = 0; b < kPasses * kBuckets; ++b) radix_counts_[b] += counts[b];
  }

  Event* src = events_.data();
  Event* dst = events_scratch_.data();
  uint32_t* psrc = track_positions ? perm_.data() : nullptr;
  uint32_t* pdst = track_positions ? perm_scratch_.data() : nullptr;
  bool swapped = false;
  bool scattered = false;
  for (int p = 0; p < kPasses; ++p) {
    const uint32_t* total = radix_counts_.data() + p * kBuckets;
    const uint64_t first_digit = (OrderedBits(src[0].value) >> (16 * p)) & 0xFFFF;
    if (total[first_digit] == count) continue;  // All keys share this digit.
    if (scattered && shards > 1) {
      run_phase([&](size_t s) {
        uint32_t* counts = shard_counts_.data() + (s * kPasses + p) * kBuckets;
        std::fill(counts, counts + kBuckets, 0);
        const size_t end = shard_begin(s + 1);
        for (size_t i = shard_begin(s); i < end; ++i) {
          ++counts[(OrderedBits(src[i].value) >> (16 * p)) & 0xFFFF];
        }
      });
    }
    // Exact serial prefix over the combined histograms in (bucket,
    // shard) order: shard s's slice of bucket b starts after every
    // smaller bucket and after shards < s within b — precisely where
    // the serial stable scatter would have put those elements, so the
    // parallel result is bitwise identical at every shard count.
    uint32_t running = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      for (size_t s = 0; s < shards; ++s) {
        uint32_t* slot = shard_counts_.data() + (s * kPasses + p) * kBuckets + b;
        const uint32_t c = *slot;
        *slot = running;
        running += c;
      }
    }
    run_phase([&](size_t s) {
      uint32_t* off = shard_counts_.data() + (s * kPasses + p) * kBuckets;
      const size_t end = shard_begin(s + 1);
      for (size_t i = shard_begin(s); i < end; ++i) {
        const uint64_t digit = (OrderedBits(src[i].value) >> (16 * p)) & 0xFFFF;
        const uint32_t slot = off[digit]++;
        dst[slot] = src[i];
        if (psrc != nullptr) pdst[slot] = psrc[i];
      }
    });
    std::swap(src, dst);
    if (track_positions) std::swap(psrc, pdst);
    swapped = !swapped;
    scattered = true;
  }
  if (swapped) {
    events_.swap(events_scratch_);
    if (track_positions) perm_.swap(perm_scratch_);
  }
}

double ExpectedCostEvaluator::SweepEventsSegmented(
    size_t num_variables, std::span<const size_t> var_offsets) {
  const size_t count = events_.size();
  UKC_CHECK_EQ(var_offsets.size(), num_variables + 1);
  UKC_CHECK_EQ(var_offsets[num_variables], count);
  ThreadPool* pool = SweepPool();
  const size_t shards =
      pool != nullptr ? static_cast<size_t>(pool->num_threads()) : 1;
  const auto run_phase = [&](const auto& fn) {
    if (pool != nullptr && shards > 1) {
      pool->ParallelFor(shards, [&fn](int, size_t s) { fn(s); });
    } else {
      for (size_t s = 0; s < shards; ++s) fn(s);
    }
  };
  // Phase timers land in ukc_sweep_phase_seconds{phase=}; handles come
  // off the default registry per sweep (one mutex-guarded lookup per
  // phase, amortized over the whole segmented pass — this path only
  // engages above the segmented-sweep event threshold).
  [[maybe_unused]] obs::MetricsRegistry& obs_registry =
      obs::MetricsRegistry::Default();
  [[maybe_unused]] const char* phase_name = "ukc_sweep_phase_seconds";
  [[maybe_unused]] const char* phase_help =
      "Segmented exact-sweep phase wall time";

  // Phase 1: stable parallel radix by value, tracking where each
  // pre-sort event landed.
  {
    UKC_OBS_TIMER(
        obs_registry.GetHistogram(phase_name, phase_help, {{"phase", "radix"}}));
    RadixSortEventsByValue(pool, /*track_positions=*/true);
  }

  // Phase 2: invert the permutation (disjoint writes; perm_ is a
  // bijection).
  inv_.resize(count);
  {
    UKC_OBS_TIMER(obs_registry.GetHistogram(phase_name, phase_help,
                                            {{"phase", "invert"}}));
    run_phase([&](size_t s) {
      const size_t begin = count * s / shards;
      const size_t end = count * (s + 1) / shards;
      for (size_t e = begin; e < end; ++e) inv_[perm_[e]] = static_cast<uint32_t>(e);
    });
  }

  // Phase 3: per-variable CDF trajectories over variable segments. A
  // variable's sorted positions ascend exactly in its serial
  // application order (stable sort), so walking them ascending
  // reproduces the serial per-variable chain old -> old + p bit for
  // bit; each step is stored as the product ratio Apply would multiply
  // by. Variables are disjoint, so segments need no cross-talk.
  ratio_.resize(count);
  ratio_zero_.resize(count);
  {
    UKC_OBS_TIMER(
        obs_registry.GetHistogram(phase_name, phase_help, {{"phase", "cdf"}}));
    run_phase([&](size_t s) {
      const size_t var_begin = num_variables * s / shards;
      const size_t var_end = num_variables * (s + 1) / shards;
      std::vector<uint32_t> order;
      for (size_t v = var_begin; v < var_end; ++v) {
        order.clear();
        for (size_t l = var_offsets[v]; l < var_offsets[v + 1]; ++l) {
          order.push_back(inv_[l]);
        }
        std::sort(order.begin(), order.end());
        double cdf = 0.0;
        for (const uint32_t g : order) {
          const double next = cdf + events_[g].probability;
          ratio_zero_[g] = cdf == 0.0;
          ratio_[g] = cdf == 0.0 ? next : next / cdf;
          cdf = next;
        }
      }
    });
  }

  // Phase 4: the ordered serial combine — the serial scan's exact
  // multiply/renormalize/emit sequence with the CDF bookkeeping and
  // divisions hoisted into the parallel phases above.
  UKC_OBS_TIMER(obs_registry.GetHistogram(phase_name, phase_help,
                                          {{"phase", "combine"}}));
  CdfProduct product(num_variables);
  KahanSum expectation;
  double previous_cdf_product = 0.0;
  size_t e = 0;
  while (e < count) {
    const double value = events_[e].value;
    while (e < count && events_[e].value == value) {
      product.ApplyRatio(ratio_zero_[e] != 0, ratio_[e]);
      ++e;
    }
    if (product.zeros == 0) {
      const double cdf_product = product.Value();
      const double mass = cdf_product - previous_cdf_product;
      if (mass > 0.0) expectation.Add(value * mass);
      previous_cdf_product = cdf_product;
    }
  }
  return expectation.Total();
}

double ExpectedCostEvaluator::SweepEvents(size_t num_variables,
                                          std::span<const size_t> var_offsets) {
  UKC_CHECK_GT(num_variables, 0u);
  if (!var_offsets.empty() && UseSegmentedSweep(events_.size())) {
    return SweepEventsSegmented(num_variables, var_offsets);
  }
  SortEventsByValue();
  cdf_.assign(num_variables, 0.0);

  // Sweep the value axis maintaining F_i (per-variable CDF) and the
  // running product P = Π_{F_i > 0} F_i (see CdfProduct).
  CdfProduct product(num_variables);
  KahanSum expectation;
  double previous_cdf_product = 0.0;  // P(max <= previous value).

  const size_t count = events_.size();
  size_t e = 0;
  while (e < count) {
    const double value = events_[e].value;
    // Apply every event at this exact value.
    while (e < count && events_[e].value == value) {
      const Event& event = events_[e];
      const double old_cdf = cdf_[event.index];
      const double new_cdf = old_cdf + event.probability;
      cdf_[event.index] = new_cdf;
      product.Apply(old_cdf, new_cdf);
      ++e;
    }
    if (product.zeros == 0) {
      const double cdf_product = product.Value();
      const double mass = cdf_product - previous_cdf_product;
      if (mass > 0.0) expectation.Add(value * mass);
      previous_cdf_product = cdf_product;
    }
  }
  return expectation.Total();
}

double ExpectedCostEvaluator::ExpectedMaxOfIndependent(
    std::span<const DiscreteDistribution> distributions) {
  ScratchGuard guard(this);
  UKC_CHECK(!distributions.empty());
  const size_t n = distributions.size();
  size_t total = 0;
  for (const auto& d : distributions) total += d.size();
  events_.clear();
  events_.reserve(total);
  var_offsets_scratch_.resize(n + 1);
  for (size_t i = 0; i < n; ++i) {
    UKC_CHECK(!distributions[i].empty());
    var_offsets_scratch_[i] = events_.size();
    for (const auto& [value, probability] : distributions[i]) {
      UKC_CHECK_GT(probability, 0.0);
      // location = fill position, so value ties keep one order across
      // the serial std::sort tiebreak and the stable radix.
      events_.push_back(Event{value, static_cast<uint32_t>(i),
                              static_cast<uint32_t>(events_.size()),
                              probability});
    }
  }
  var_offsets_scratch_[n] = events_.size();
  return SweepEvents(n, var_offsets_scratch_);
}

Result<double> ExpectedCostEvaluator::AssignedCost(
    const uncertain::UncertainDataset& dataset, const Assignment& assignment) {
  ScratchGuard guard(this);
  UKC_RETURN_IF_ERROR(options_.deadline.Check("AssignedCost"));
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument(
        StrFormat("ExactAssignedCost: assignment covers %zu points, dataset "
                  "has %zu",
                  assignment.size(), dataset.n()));
  }
  const metric::MetricSpace& space = dataset.space();
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] < 0 || assignment[i] >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("ExactAssignedCost: assignment[%zu]=%d out of range", i,
                    assignment[i]));
    }
  }
  if (dataset.n() == 0) return 0.0;

  // Stream the flat location arrays: sites/probs are contiguous; only
  // the per-point target changes at offset boundaries.
  const metric::SiteId* sites = dataset.flat_sites().data();
  const double* probabilities = dataset.flat_probabilities().data();
  const size_t* offsets = dataset.offsets().data();
  events_.clear();
  events_.reserve(dataset.total_locations());
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  if (euclidean != nullptr) {
    // Distances evaluated straight off the coordinate arena.
    const size_t dim = euclidean->dim();
    const metric::Norm norm = euclidean->norm();
    for (size_t i = 0; i < dataset.n(); ++i) {
      const double* target = euclidean->coords(assignment[i]);
      for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
        events_.push_back(Event{
            metric::NormDistanceKernel(norm, euclidean->coords(sites[l]),
                                       target, dim),
            static_cast<uint32_t>(i), static_cast<uint32_t>(l),
            probabilities[l]});
      }
    }
  } else {
    for (size_t i = 0; i < dataset.n(); ++i) {
      for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
        events_.push_back(Event{space.Distance(sites[l], assignment[i]),
                                static_cast<uint32_t>(i),
                                static_cast<uint32_t>(l), probabilities[l]});
      }
    }
  }
  return SweepEvents(dataset.n(), dataset.offsets());
}

Status ExpectedCostEvaluator::FillUnassignedEvents(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers) {
  if (centers.empty()) {
    return Status::InvalidArgument("ExactUnassignedCost: no centers");
  }
  const metric::MetricSpace& space = dataset.space();
  for (metric::SiteId c : centers) {
    if (c < 0 || c >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("ExactUnassignedCost: center %d out of range", c));
    }
  }

  const metric::SiteId* sites = dataset.flat_sites().data();
  const double* probabilities = dataset.flat_probabilities().data();
  const size_t* offsets = dataset.offsets().data();
  const size_t total = dataset.total_locations();
  events_.clear();
  events_.reserve(total);
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  if (euclidean != nullptr && euclidean->norm() == metric::Norm::kL2 &&
      centers.size() >= options_.kdtree_cutover) {
    // With many centers in a Euclidean space, nearest-center queries
    // dominate; a kd-tree over the centers turns each O(k) scan into a
    // near-logarithmic search. The tree is cached across calls and only
    // rebuilt when the gathered center coordinates actually change.
    euclidean->GatherCoords(centers, &center_coords_);
    if (!tree_.has_value() || tree_dim_ != euclidean->dim() ||
        tree_coords_ != center_coords_) {
      UKC_ASSIGN_OR_RETURN(
          geometry::KdTree tree,
          geometry::KdTree::BuildFlat(center_coords_, euclidean->dim()));
      tree_ = std::move(tree);
      tree_dim_ = euclidean->dim();
      tree_coords_ = center_coords_;
    }
    const geometry::KdTree& tree = *tree_;
    size_t i = 0;
    for (size_t l = 0; l < total; ++l) {
      while (l >= offsets[i + 1]) ++i;
      events_.push_back(Event{
          std::sqrt(tree.Nearest(euclidean->coords(sites[l])).squared_distance),
          static_cast<uint32_t>(i), static_cast<uint32_t>(l),
          probabilities[l]});
    }
    return Status::OK();
  }
  if (euclidean != nullptr && euclidean->norm() == metric::Norm::kL2) {
    // Flat linear scan comparing SQUARED distances, one sqrt for the
    // winner: IEEE sqrt is monotone and correctly rounded, so
    // min_c sqrt(s_c) == sqrt(min_c s_c) bit for bit — identical to
    // the per-center-sqrt scan at one sqrt per location instead of k
    // (the single-core win on BM_ExactSweep* at n >= 1e5).
    const size_t dim = euclidean->dim();
    euclidean->GatherCoords(centers, &center_coords_);
    const double* center_block = center_coords_.data();
    const size_t k = centers.size();
    size_t i = 0;
    for (size_t l = 0; l < total; ++l) {
      while (l >= offsets[i + 1]) ++i;
      const double* from = euclidean->coords(sites[l]);
      double best = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < k; ++c) {
        const double s =
            geometry::SquaredDistanceKernel(from, center_block + c * dim, dim);
        if (s < best) best = s;
      }
      events_.push_back(Event{std::sqrt(best), static_cast<uint32_t>(i),
                              static_cast<uint32_t>(l), probabilities[l]});
    }
    return Status::OK();
  }
  if (euclidean != nullptr) {
    // Flat linear scan over the gathered center block.
    const size_t dim = euclidean->dim();
    const metric::Norm norm = euclidean->norm();
    euclidean->GatherCoords(centers, &center_coords_);
    size_t i = 0;
    for (size_t l = 0; l < total; ++l) {
      while (l >= offsets[i + 1]) ++i;
      events_.push_back(
          Event{FlatDistanceToSet(norm, euclidean->coords(sites[l]),
                                  center_coords_.data(), centers.size(), dim),
                static_cast<uint32_t>(i), static_cast<uint32_t>(l),
                probabilities[l]});
    }
    return Status::OK();
  }
  size_t i = 0;
  for (size_t l = 0; l < total; ++l) {
    while (l >= offsets[i + 1]) ++i;
    events_.push_back(Event{space.DistanceToSet(sites[l], centers),
                            static_cast<uint32_t>(i),
                            static_cast<uint32_t>(l), probabilities[l]});
  }
  return Status::OK();
}

Result<double> ExpectedCostEvaluator::UnassignedCost(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers) {
  ScratchGuard guard(this);
  UKC_RETURN_IF_ERROR(options_.deadline.Check("UnassignedCost"));
  UKC_RETURN_IF_ERROR(FillUnassignedEvents(dataset, centers));
  if (dataset.n() == 0) return 0.0;
  return SweepEvents(dataset.n(), dataset.offsets());
}

Result<std::vector<double>> ExpectedCostEvaluator::UnassignedCostBatch(
    const uncertain::UncertainDataset& dataset,
    const std::vector<std::vector<metric::SiteId>>& center_sets) {
  ScratchGuard guard(this);
  std::vector<double> values;
  values.reserve(center_sets.size());
  for (const auto& centers : center_sets) {
    UKC_ASSIGN_OR_RETURN(double value, UnassignedCost(dataset, centers));
    values.push_back(value);
  }
  return values;
}

Status ExpectedCostEvaluator::BuildSwapBase(
    const uncertain::UncertainDataset& dataset,
    std::span<const double> base_distances, std::span<const uint32_t> point_of,
    SwapBase* out) {
  ScratchGuard guard(this);
  UKC_CHECK(out != nullptr);
  const size_t total = dataset.total_locations();
  if (base_distances.size() != total || point_of.size() != total) {
    return Status::InvalidArgument(
        "BuildSwapBase: table sizes must equal total_locations");
  }
  const double* probabilities = dataset.flat_probabilities().data();
  CheckScratchReservation();

  // Sorted (value, location) base event stream. The LSD radix is stable
  // over the ascending location fill; the small-input std::sort spells
  // the tiebreak out.
  events_.clear();
  events_.reserve(total);
  for (size_t l = 0; l < total; ++l) {
    events_.push_back(Event{base_distances[l], point_of[l],
                            static_cast<uint32_t>(l), probabilities[l]});
  }
  if (events_.size() < kRadixSortCutover) {
    std::sort(events_.begin(), events_.end(),
              [](const Event& a, const Event& b) {
                return a.value != b.value ? a.value < b.value
                                          : a.location < b.location;
              });
  } else if (options_.parallel_sweep && SweepPool() != nullptr) {
    // Same stable permutation as the serial radix, sharded over the
    // pool — available when this evaluator is driven from the top
    // level (ParallelCandidateEvaluator's single-stale-table rollover
    // rounds), not from inside a pool job.
    RadixSortEventsByValue(SweepPool(), /*track_positions=*/false);
  } else {
    SortEventsByValue();
  }
  out->events.assign(events_.begin(), events_.end());
  FinishSwapBase(dataset, base_distances, out);
  return Status::OK();
}

Status ExpectedCostEvaluator::PatchSwapBase(
    const uncertain::UncertainDataset& dataset,
    std::span<const double> old_base, std::span<const double> new_base,
    std::span<const uint32_t> point_of, SwapBase* out) {
  ScratchGuard guard(this);
  UKC_CHECK(out != nullptr);
  const size_t total = dataset.total_locations();
  if (old_base.size() != total || new_base.size() != total ||
      point_of.size() != total || out->events.size() != total) {
    return Status::InvalidArgument(
        "PatchSwapBase: table sizes must equal total_locations");
  }
  const double* probabilities = dataset.flat_probabilities().data();
  CheckScratchReservation();

  // Replacement entries, in ascending location order, then sorted into
  // the exact (value, location) order the full sort produces; the stamp
  // mask marks their locations for the compaction pass.
  BeginChangedCollection(dataset);
  for (size_t l = 0; l < total; ++l) {
    if (old_base[l] != new_base[l]) {
      changed_.emplace_back(new_base[l], static_cast<uint32_t>(l));
      changed_stamp_[l] = stamp_;
    }
  }
  if (changed_.size() > total / 8) {
    // Patching beats the radix rebuild only while the edit is sparse:
    // sorting the replacements is O(changed log changed) against the
    // radix's O(N). Past ~N/8 the rebuild wins — take it.
    return BuildSwapBase(dataset, new_base, point_of, out);
  }
  std::sort(changed_.begin(), changed_.end());

  // One merge pass: surviving old entries (already in order) against
  // the sorted replacements.
  events_.clear();
  events_.reserve(total);
  for (const Event& event : out->events) {
    if (changed_stamp_[event.location] != stamp_) events_.push_back(event);
  }
  events_scratch_.resize(total);
  size_t a = 0;  // events_ (kept).
  size_t b = 0;  // changed_ (replacements).
  for (size_t slot = 0; slot < total; ++slot) {
    const bool take_kept =
        b >= changed_.size() ||
        (a < events_.size() &&
         (events_[a].value != changed_[b].first
              ? events_[a].value < changed_[b].first
              : events_[a].location < changed_[b].second));
    if (take_kept) {
      events_scratch_[slot] = events_[a++];
    } else {
      const uint32_t l = changed_[b].second;
      events_scratch_[slot] = Event{changed_[b].first, point_of[l], l,
                                    probabilities[l]};
      ++b;
    }
  }
  out->events.assign(events_scratch_.begin(), events_scratch_.end());
  FinishSwapBase(dataset, new_base, out);
  return Status::OK();
}

Status ExpectedCostEvaluator::EditSwapBase(
    const uncertain::UncertainDataset& dataset, std::span<const double> new_base,
    std::span<const uint32_t> point_of, const DatasetEdit& edit, SwapBase* out) {
  ScratchGuard guard(this);
  UKC_CHECK(out != nullptr);
  const size_t total = dataset.total_locations();
  if (new_base.size() != total || point_of.size() != total) {
    return Status::InvalidArgument(
        "EditSwapBase: table sizes must equal total_locations");
  }
  if (edit.location_end <= edit.location_begin) {
    return Status::InvalidArgument(
        "EditSwapBase: edit location range must be non-empty");
  }
  const size_t span = edit.location_end - edit.location_begin;
  const size_t old_total = edit.is_insert ? total - span : total + span;
  if (edit.is_insert && edit.location_end != total) {
    return Status::InvalidArgument(
        "EditSwapBase: an insert must append at the end of the stream");
  }
  if (!edit.is_insert && edit.location_end > old_total) {
    return Status::InvalidArgument(
        "EditSwapBase: delete range exceeds the pre-edit stream");
  }
  if (out->events.size() != old_total) {
    return Status::InvalidArgument(
        "EditSwapBase: table was not built for the pre-edit stream");
  }
  const double* probabilities = dataset.flat_probabilities().data();
  CheckScratchReservation();

  if (edit.is_insert) {
    // The new point's events, sorted among themselves. Their location
    // ids and point index exceed every retained entry's, so a sorted
    // merge lands ties in exactly the (value, location) order the full
    // sort produces.
    changed_.clear();
    for (size_t l = edit.location_begin; l < edit.location_end; ++l) {
      changed_.emplace_back(new_base[l], static_cast<uint32_t>(l));
    }
    std::sort(changed_.begin(), changed_.end());
    events_scratch_.resize(total);
    size_t a = 0;  // out->events (kept, already in order).
    size_t b = 0;  // changed_ (the appended point).
    for (size_t slot = 0; slot < total; ++slot) {
      const bool take_kept =
          b >= changed_.size() ||
          (a < out->events.size() &&
           (out->events[a].value != changed_[b].first
                ? out->events[a].value < changed_[b].first
                : out->events[a].location < changed_[b].second));
      if (take_kept) {
        events_scratch_[slot] = out->events[a++];
      } else {
        const uint32_t l = changed_[b].second;
        events_scratch_[slot] =
            Event{changed_[b].first, point_of[l], l, probabilities[l]};
        ++b;
      }
    }
    out->events.assign(events_scratch_.begin(), events_scratch_.end());
  } else {
    // Compaction: drop the deleted point's events and renumber the
    // retained index/location fields for the closed gap. The
    // renumbering is strictly monotone on retained locations and the
    // values are untouched, so the (value, location) order survives
    // without a sort; per-location probabilities are unchanged by a
    // whole-point removal.
    events_.clear();
    events_.reserve(total);
    for (const Event& event : out->events) {
      if (event.location >= edit.location_begin &&
          event.location < edit.location_end) {
        continue;
      }
      Event kept = event;
      if (kept.location >= edit.location_end) {
        kept.location -= static_cast<uint32_t>(span);
      }
      if (kept.index > edit.point) kept.index -= 1;
      events_.push_back(kept);
    }
    if (events_.size() != total) {
      return Status::InvalidArgument(
          "EditSwapBase: delete range does not match the table's events");
    }
    out->events.assign(events_.begin(), events_.end());
  }
  FinishSwapBase(dataset, new_base, out);
  return Status::OK();
}

void ExpectedCostEvaluator::FinishSwapBase(
    const uncertain::UncertainDataset& dataset,
    std::span<const double> base_distances, SwapBase* out) {
  // Every build gets a process-unique id: the derived-rung cache keys
  // on it, so no evaluator — this one or any other — can mistake a
  // rebuilt table at a reused address for the one it derived from.
  static std::atomic<uint64_t> next_build_id{1};
  out->build_id = next_build_id.fetch_add(1, std::memory_order_relaxed);
  const size_t n = dataset.n();
  const size_t total = dataset.total_locations();
  const size_t* offsets = dataset.offsets().data();

  // Per-point minimum base distance (the value axis of the ladder).
  // swap_first_/swap_order_/cdf_ are member scratch — this runs once
  // per stale table per round, so no per-call allocations.
  std::vector<double>& first = swap_first_;
  first.assign(n, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < n; ++i) {
    for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
      first[i] = std::min(first[i], base_distances[l]);
    }
  }

  // Rung 0: the SECOND-largest per-point minimum. Until the sweep
  // passes the largest, some CDF is still 0 and Π F_i = 0 — and the
  // second-largest stays a valid merge start unless a candidate
  // improves every flagged point below it. The deeper rungs descend
  // through upper quantiles of the per-point minima to the median:
  // a candidate that covers the whole bottleneck cluster lands on the
  // rung just below the worst point it does NOT improve, replaying only
  // the events above it.
  // Rung ranks in the descending order statistics of the minima,
  // selected by an nth_element chain over shrinking prefixes (deepest
  // rank first) — O(n) total, no full sort.
  const double quantiles[kSwapLadderRungs] = {0.0,  0.02, 0.04, 0.08,
                                              0.16, 0.32, 0.50};
  size_t ranks[kSwapLadderRungs];
  ranks[0] = n > 1 ? 1 : 0;  // Second largest.
  for (size_t level = 1; level < kSwapLadderRungs; ++level) {
    size_t rank = static_cast<size_t>(quantiles[level] *
                                      static_cast<double>(n));
    if (rank >= n) rank = n - 1;
    ranks[level] = std::max(rank, ranks[level - 1]);
  }
  std::vector<double>& order = swap_order_;
  order.assign(first.begin(), first.end());
  size_t prefix = n;
  size_t positioned = n;  // No rank positioned yet.
  for (size_t level = kSwapLadderRungs; level-- > 0;) {
    const size_t rank = ranks[level];
    if (rank != positioned) {
      std::nth_element(order.begin(), order.begin() + rank,
                       order.begin() + prefix, std::greater<double>());
      positioned = rank;
      prefix = rank + 1;
    }
    out->levels[level].threshold = order[rank];
  }
  for (size_t level = 1; level < kSwapLadderRungs; ++level) {
    out->levels[level].threshold = std::min(out->levels[level].threshold,
                                            out->levels[level - 1].threshold);
  }
  out->threshold = out->levels[0].threshold;

  const double deepest = out->levels[kSwapLadderRungs - 1].threshold;
  out->bottleneck.assign(n, 0);
  out->bottleneck_count = 0;
  out->deep_points.clear();
  out->deep_first.clear();
  for (size_t i = 0; i < n; ++i) {
    if (first[i] >= out->levels[0].threshold) {
      out->bottleneck[i] = 1;
      ++out->bottleneck_count;
    }
    if (first[i] >= deepest) {
      out->deep_points.push_back(static_cast<uint32_t>(i));
      out->deep_first.push_back(first[i]);
    }
  }

  // One prefix sweep capturing every rung's state just below its
  // threshold: per-point CDFs, the zero count, and the running Π F_i
  // mantissa/exponent. (No mass emission is tracked — each rung is only
  // consulted when nothing can have been emitted below it.)
  std::vector<double>& cdf = cdf_;
  cdf.assign(n, 0.0);
  CdfProduct product(n);
  const auto capture = [&](int level, size_t index) {
    SwapBase::Snapshot& snapshot = out->levels[level];
    snapshot.index = index;
    snapshot.zeros = product.zeros;
    snapshot.mantissa = product.mantissa;
    snapshot.exponent = product.exponent;
    // Ladder compaction: only rung 0 and the deepest rung keep their
    // n-length CDF resident (2·n instead of kSwapLadderRungs·n doubles
    // per table); an intermediate rung is re-derived on escalation by
    // replaying events[deepest.index, index) — see
    // ScoreSwapFromChanged. The swap releases the capacity, not just
    // the size: held capacity would defeat the compaction.
    if (!options_.compact_swap_ladder || level == 0 ||
        level == static_cast<int>(kSwapLadderRungs) - 1) {
      snapshot.cdf.assign(cdf.begin(), cdf.end());
    } else {
      std::vector<double>().swap(snapshot.cdf);
    }
  };
  int next_level = kSwapLadderRungs - 1;  // Lowest threshold crossed first.
  size_t s = 0;
  for (; s < total; ++s) {
    const Event& event = out->events[s];
    while (next_level >= 0 &&
           event.value >= out->levels[next_level].threshold) {
      capture(next_level, s);
      --next_level;
    }
    if (next_level < 0) break;  // Everything from here on is tail.
    const double old_cdf = cdf[event.index];
    const double new_cdf = old_cdf + event.probability;
    cdf[event.index] = new_cdf;
    product.Apply(old_cdf, new_cdf);
  }
  // Rungs the stream never reached see the whole applied prefix.
  while (next_level >= 0) {
    capture(next_level, s);
    --next_level;
  }
}

double ExpectedCostEvaluator::MergeSweepFrom(
    const uncertain::UncertainDataset& dataset, const SwapBase& base,
    size_t a_begin, std::span<const std::pair<double, uint32_t>> changed,
    std::span<const uint32_t> point_of, size_t zeros, double mantissa,
    int exponent) {
  const double* probabilities = dataset.flat_probabilities().data();
  const Event* events = base.events.data();
  const size_t total = base.events.size();
  CdfProduct product(0);
  product.zeros = zeros;
  product.mantissa = mantissa;
  product.exponent = exponent;
  KahanSum expectation;
  double previous_cdf_product = 0.0;

  const size_t changed_count = changed.size();
  size_t a = a_begin;
  size_t b = 0;
  const auto skip_changed = [&] {
    while (a < total && changed_stamp_[events[a].location] == stamp_) ++a;
  };
  // Single-pass merge: take the lexicographically smaller (value, l)
  // head, apply it, and emit mass once the next head moves past the
  // current value (the streams are nondecreasing, so "different" means
  // "greater"). va/vb mirror the stream heads to keep the loop
  // load-light; the base stream walk is sequential memory.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  skip_changed();
  double va = a < total ? events[a].value : kInf;
  double vb = b < changed_count ? changed[b].first : kInf;
  while (a < total || b < changed_count) {
    double value;
    bool take_base;
    if (va < vb) {
      take_base = true;
    } else if (vb < va) {
      take_base = false;
    } else {
      take_base = b >= changed_count ||
                  (a < total && events[a].location < changed[b].second);
    }
    if (take_base) {
      value = va;
      const Event& event = events[a];
      const double old_cdf = cdf_[event.index];
      const double new_cdf = old_cdf + event.probability;
      cdf_[event.index] = new_cdf;
      product.Apply(old_cdf, new_cdf);
      ++a;
      skip_changed();
      va = a < total ? events[a].value : kInf;
    } else {
      value = vb;
      const uint32_t l = changed[b].second;
      const uint32_t i = point_of[l];
      const double old_cdf = cdf_[i];
      const double new_cdf = old_cdf + probabilities[l];
      cdf_[i] = new_cdf;
      product.Apply(old_cdf, new_cdf);
      ++b;
      vb = b < changed_count ? changed[b].first : kInf;
    }
    if (va != value && vb != value && product.zeros == 0) {
      const double cdf_product = product.Value();
      const double mass = cdf_product - previous_cdf_product;
      if (mass > 0.0) expectation.Add(value * mass);
      previous_cdf_product = cdf_product;
    }
  }
  return expectation.Total();
}

namespace {

// The one improved-location scan shared by every collection pass:
// calls consider(d, l) for each flat location l with d(l, extra) <
// base_distances[l], restricted to base_distances[l] >= gate (pass
// -infinity for an ungated scan). L2 compares *squared* distances — the
// sqrt is monotone, so d² < b² decides d < b, and only the winners pay
// a sqrt (a rounding tie after sqrt just moves the event between the
// base and changed streams; the applied (value, point, probability)
// multiset is the same). The gate runs before the kernel, so on gated
// passes most locations skip the distance entirely.
template <typename Consider>
void ScanImproved(const uncertain::UncertainDataset& dataset,
                  std::span<const double> base_distances, metric::SiteId extra,
                  double gate, Consider&& consider) {
  const size_t total = dataset.total_locations();
  const metric::SiteId* sites = dataset.flat_sites().data();
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  if (euclidean != nullptr && euclidean->norm() == metric::Norm::kL2) {
    const size_t dim = euclidean->dim();
    const double* target = euclidean->coords(extra);
    for (size_t l = 0; l < total; ++l) {
      const double b = base_distances[l];
      if (b < gate) continue;
      const double dsq =
          geometry::SquaredDistanceKernel(euclidean->coords(sites[l]), target, dim);
      if (dsq < b * b) consider(std::sqrt(dsq), l);
    }
  } else if (euclidean != nullptr) {
    const size_t dim = euclidean->dim();
    const metric::Norm norm = euclidean->norm();
    const double* target = euclidean->coords(extra);
    for (size_t l = 0; l < total; ++l) {
      const double b = base_distances[l];
      if (b < gate) continue;
      const double d = metric::NormDistanceKernel(
          norm, euclidean->coords(sites[l]), target, dim);
      if (d < b) consider(d, l);
    }
  } else {
    const metric::MetricSpace& space = dataset.space();
    for (size_t l = 0; l < total; ++l) {
      const double b = base_distances[l];
      if (b < gate) continue;
      const double d = space.Distance(sites[l], extra);
      if (d < b) consider(d, l);
    }
  }
}

}  // namespace

Result<double> ExpectedCostEvaluator::UnassignedCostSwapPresorted(
    const uncertain::UncertainDataset& dataset,
    std::span<const double> base_distances, const SwapBase& base,
    std::span<const uint32_t> point_of, metric::SiteId extra) {
  ScratchGuard guard(this);
  UKC_RETURN_IF_ERROR(options_.deadline.Check("UnassignedCostSwapPresorted"));
  const metric::MetricSpace& space = dataset.space();
  if (extra < 0 || extra >= space.num_sites()) {
    return Status::InvalidArgument(
        StrFormat("UnassignedCostSwapPresorted: center %d out of range", extra));
  }
  const size_t total = dataset.total_locations();
  if (base_distances.size() != total || base.events.size() != total ||
      point_of.size() != total || base.levels[0].cdf.size() != dataset.n()) {
    return Status::InvalidArgument(
        "UnassignedCostSwapPresorted: table sizes must match the dataset");
  }
  // The candidate's *relevant* improved locations (d < base, restricted
  // to base >= threshold — an improvement entirely below the snapshot
  // threshold only moves CDF mass the snapshot already accounts for),
  // stamped out of the base stream. A candidate that improves EVERY
  // flagged bottleneck point below the threshold moves the emission
  // start earlier than the snapshot, so it must take the full-merge
  // fallback over the complete improved set.
  BeginChangedCollection(dataset);
  const double threshold = base.threshold;
  size_t bottleneck_hits = 0;
  const auto consider = [&](double d, size_t l) {
    changed_.emplace_back(d, static_cast<uint32_t>(l));
    changed_stamp_[l] = stamp_;
    if (d < threshold) {
      const uint32_t i = point_of[l];
      if (base.bottleneck[i] && point_stamp_[i] != stamp_) {
        point_stamp_[i] = stamp_;
        ++bottleneck_hits;
      }
    }
  };
  ScanImproved(dataset, base_distances, extra, threshold, consider);

  const SwapBase::Snapshot* level = &base.levels[0];
  if (bottleneck_hits == base.bottleneck_count) {
    level = EscalateAndCollect(dataset, base, point_of, base_distances, extra);
  }
  return ScoreSwapFromChanged(dataset, base, point_of, base_distances, level);
}

void ExpectedCostEvaluator::BeginChangedCollection(
    const uncertain::UncertainDataset& dataset) {
  const size_t total = dataset.total_locations();
  if (changed_stamp_.size() != total) changed_stamp_.assign(total, 0);
  if (point_stamp_.size() != dataset.n()) {
    point_stamp_.assign(dataset.n(), 0);
    point_min_.assign(dataset.n(), 0.0);
  }
  if (++stamp_ == 0) {  // Stamp wrapped: reset the masks once.
    std::fill(changed_stamp_.begin(), changed_stamp_.end(), 0);
    std::fill(point_stamp_.begin(), point_stamp_.end(), 0);
    stamp_ = 1;
  }
  changed_.clear();
}

const ExpectedCostEvaluator::SwapBase::Snapshot*
ExpectedCostEvaluator::EscalateAndCollect(
    const uncertain::UncertainDataset& dataset, const SwapBase& base,
    std::span<const uint32_t> point_of, std::span<const double> base_distances,
    metric::SiteId extra) {
  // One gated pass at the deepest rung: collect every improvement of a
  // location with base >= median threshold (a superset of what any rung
  // >= it replays — entries below the chosen rung are skipped by the
  // scoring loop), tracking each point's improved minimum service.
  ++ladder_escalations_;
  {
    static obs::Counter* const escalations =
        obs::MetricsRegistry::Default().GetCounter(
            "ukc_ladder_escalations_total",
            "Swap evaluations escalated past ladder rung 0");
    escalations->Increment();
  }
  BeginChangedCollection(dataset);
  const double gate = base.levels[kSwapLadderRungs - 1].threshold;
  ScanImproved(dataset, base_distances, extra, gate, [&](double d, size_t l) {
    changed_.emplace_back(d, static_cast<uint32_t>(l));
    changed_stamp_[l] = stamp_;
    const uint32_t i = point_of[l];
    if (point_stamp_[i] != stamp_) {
      point_stamp_[i] = stamp_;
      point_min_[i] = d;
    } else if (d < point_min_[i]) {
      point_min_[i] = d;
    }
  });

  // Every location of a deep point (min base >= gate) has base >= gate,
  // so the gated pass saw ALL its improvements — its new first service
  // is exact, and the max over deep points lower-bounds the swapped
  // configuration's emission start. (Non-deep points sit below the gate
  // and cannot raise the max past it.)
  double start = 0.0;
  for (size_t j = 0; j < base.deep_points.size(); ++j) {
    const uint32_t i = base.deep_points[j];
    double new_first = base.deep_first[j];
    if (point_stamp_[i] == stamp_ && point_min_[i] < new_first) {
      new_first = point_min_[i];
    }
    start = std::max(start, new_first);
  }
  for (size_t level = 1; level < kSwapLadderRungs; ++level) {
    if (base.levels[level].threshold <= start) return &base.levels[level];
  }
  CollectAllImproved(dataset, base_distances, extra);
  return nullptr;
}

void ExpectedCostEvaluator::CollectAllImproved(
    const uncertain::UncertainDataset& dataset,
    std::span<const double> base_distances, metric::SiteId extra) {
  BeginChangedCollection(dataset);
  ScanImproved(dataset, base_distances, extra,
               -std::numeric_limits<double>::infinity(),
               [&](double d, size_t l) {
                 changed_.emplace_back(d, static_cast<uint32_t>(l));
                 changed_stamp_[l] = stamp_;
               });
}

Result<double> ExpectedCostEvaluator::UnassignedCostSwapPruned(
    const uncertain::UncertainDataset& dataset,
    std::span<const double> base_distances, const SwapBase& base,
    std::span<const uint32_t> point_of, metric::SiteId extra,
    const geometry::BoundedKdTree& tree, std::span<const double> subtree_max) {
  ScratchGuard guard(this);
  UKC_RETURN_IF_ERROR(options_.deadline.Check("UnassignedCostSwapPruned"));
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  if (euclidean == nullptr) {
    return Status::FailedPrecondition(
        "UnassignedCostSwapPruned: requires a Euclidean dataset");
  }
  if (extra < 0 || extra >= dataset.space().num_sites()) {
    return Status::InvalidArgument(
        StrFormat("UnassignedCostSwapPruned: center %d out of range", extra));
  }
  const size_t total = dataset.total_locations();
  if (base_distances.size() != total || base.events.size() != total ||
      point_of.size() != total || base.levels[0].cdf.size() != dataset.n() ||
      tree.size() != total || subtree_max.size() != total) {
    return Status::InvalidArgument(
        "UnassignedCostSwapPruned: table sizes must match the dataset");
  }
  const size_t dim = euclidean->dim();
  const metric::Norm norm = euclidean->norm();
  const double* target = euclidean->coords(extra);

  BeginChangedCollection(dataset);
  const double threshold = base.threshold;
  size_t bottleneck_hits = 0;
  const auto consider = [&](double d, size_t l) {
    changed_.emplace_back(d, static_cast<uint32_t>(l));
    changed_stamp_[l] = stamp_;
    if (d < threshold) {
      const uint32_t i = point_of[l];
      if (base.bottleneck[i] && point_stamp_[i] != stamp_) {
        point_stamp_[i] = stamp_;
        ++bottleneck_hits;
      }
    }
  };

  // Pruning slack: the per-axis-excess box bound and the squared
  // maximum are each within ~1e-15 relative of their real values, so a
  // 1e-9 deflation can never prune a subtree holding a location that
  // passes the exact per-location test below — it only re-visits a few
  // boundary nodes. The subtree maxima are *masked* (0 where the base
  // distance sits below the threshold), so whole subtrees of
  // can-never-qualify locations prune immediately; the per-location
  // test applies the same base >= threshold gate as the full scan.
  constexpr double kSlack = 1.0 - 1e-9;
  if (norm == metric::Norm::kL2) {
    // Same arithmetic as the full scan: squared kernel, dsq < b² test,
    // sqrt only for the winners.
    tree.Traverse(
        subtree_max,
        [&](const double* lo, const double* hi, double node_max) {
          double bound = 0.0;
          for (size_t a = 0; a < dim; ++a) {
            const double x = target[a];
            const double e = x < lo[a] ? lo[a] - x : (x > hi[a] ? x - hi[a] : 0.0);
            bound += e * e;
          }
          return bound * kSlack >= node_max * node_max;
        },
        [&](uint32_t l, const double* coords) {
          const double b = base_distances[l];
          if (b < threshold) return;
          const double dsq = geometry::SquaredDistanceKernel(coords, target, dim);
          if (dsq < b * b) consider(std::sqrt(dsq), l);
        });
  } else {
    tree.Traverse(
        subtree_max,
        [&](const double* lo, const double* hi, double node_max) {
          double bound = 0.0;
          for (size_t a = 0; a < dim; ++a) {
            const double x = target[a];
            const double e = x < lo[a] ? lo[a] - x : (x > hi[a] ? x - hi[a] : 0.0);
            if (norm == metric::Norm::kL1) {
              bound += e;
            } else {
              bound = std::max(bound, e);
            }
          }
          return bound * kSlack >= node_max;
        },
        [&](uint32_t l, const double* coords) {
          const double b = base_distances[l];
          if (b < threshold) return;
          const double d = metric::NormDistanceKernel(norm, coords, target, dim);
          if (d < b) consider(d, l);
        });
  }

  // The tree yields locations in traversal order; the full scan
  // collects them in ascending location order, and the snapshot path's
  // CDF additions follow collection order — re-sort so every downstream
  // addition happens in the exact same sequence (bitwise parity).
  std::sort(changed_.begin(), changed_.end(),
            [](const std::pair<double, uint32_t>& a,
               const std::pair<double, uint32_t>& b) {
              return a.second < b.second;
            });
  const SwapBase::Snapshot* level = &base.levels[0];
  if (bottleneck_hits == base.bottleneck_count) {
    // The escalation re-collects with a plain gated scan in both entry
    // points, so a kd-detected escalation is bitwise identical to a
    // full-scan-detected one.
    level = EscalateAndCollect(dataset, base, point_of, base_distances, extra);
  }
  return ScoreSwapFromChanged(dataset, base, point_of, base_distances, level);
}

Result<double> ExpectedCostEvaluator::ScoreSwapFromChanged(
    const uncertain::UncertainDataset& dataset, const SwapBase& base,
    std::span<const uint32_t> point_of, std::span<const double> base_distances,
    const SwapBase::Snapshot* level) {
  const double* probabilities = dataset.flat_probabilities().data();
  const size_t num_variables = dataset.n();
  if (level == nullptr) {
    // Full merge from scratch: every event replayed (changed_ holds the
    // complete improved set).
    std::sort(changed_.begin(), changed_.end());
    cdf_.assign(num_variables, 0.0);
    return MergeSweepFrom(dataset, base, 0, changed_, point_of, num_variables,
                          1.0, 0);
  }

  // Snapshot path against rung `level`. A changed location below the
  // rung's threshold only *moves* CDF mass that is already below it:
  //   - old value also below (base[l] < threshold): the snapshot holds
  //     the same mass at the old value — since no mass is emitted below
  //     the threshold, only the accumulated CDFs matter, so nothing to
  //     do (the order of additions differs by ~1 ulp from a full
  //     replay);
  //   - old value at/above the threshold: the mass newly drops below —
  //     apply it on top of the snapshot state;
  //   - new value at/above the threshold: a regular tail-merge event.
  const double threshold = level->threshold;
  if (level->cdf.empty()) {
    // Compacted intermediate rung: re-derive its CDF from the deepest
    // rung (always resident) by replaying the base prefix
    // events[deepest.index, level->index) — the same per-variable
    // additions in the same order FinishSwapBase applied them, so the
    // result is bitwise identical to the rung the reference ladder
    // stores. The derivation is cached per (table, epoch, rung):
    // every further candidate of the round escalating to this rung
    // reuses it, so the O(prefix) replay is paid once per evaluator,
    // not once per candidate.
    const int level_index = static_cast<int>(level - base.levels);
    if (derived_build_id_ != base.build_id || derived_level_ != level_index) {
      const SwapBase::Snapshot& deepest =
          base.levels[kSwapLadderRungs - 1];
      UKC_CHECK(!deepest.cdf.empty())
          << "compacted swap ladder: deepest rung lost its CDF";
      UKC_CHECK_LE(deepest.index, level->index);
      derived_cdf_.assign(deepest.cdf.begin(), deepest.cdf.end());
      for (size_t e = deepest.index; e < level->index; ++e) {
        const Event& event = base.events[e];
        derived_cdf_[event.index] += event.probability;
      }
      ladder_replayed_events_ += level->index - deepest.index;
      {
        static obs::Counter* const replayed =
            obs::MetricsRegistry::Default().GetCounter(
                "ukc_ladder_replayed_events_total",
                "Base events replayed to re-derive compacted rung CDFs");
        replayed->Add(level->index - deepest.index);
      }
      derived_build_id_ = base.build_id;
      derived_level_ = level_index;
    }
    cdf_.assign(derived_cdf_.begin(), derived_cdf_.end());
  } else {
    cdf_.assign(level->cdf.begin(), level->cdf.end());
  }
  CdfProduct product(0);
  product.zeros = level->zeros;
  product.mantissa = level->mantissa;
  product.exponent = level->exponent;
  changed_tail_.clear();
  // changed_ is in ascending location order, so a point's entries are
  // consecutive: mass newly dropping below the threshold is accumulated
  // per point-run and folded into the product once per point instead of
  // once per event (the expensive part of Apply is the division).
  uint32_t run_point = 0;
  double run_delta = 0.0;
  const auto flush_run = [&] {
    if (run_delta == 0.0) return;
    const double old_cdf = cdf_[run_point];
    const double new_cdf = old_cdf + run_delta;
    cdf_[run_point] = new_cdf;
    product.Apply(old_cdf, new_cdf);
    run_delta = 0.0;
  };
  for (const auto& [d, l] : changed_) {
    if (d >= threshold) {
      changed_tail_.emplace_back(d, l);
      continue;
    }
    if (base_distances[l] >= threshold) {
      const uint32_t i = point_of[l];
      if (i != run_point) flush_run();
      run_point = i;
      run_delta += probabilities[l];
    }
  }
  flush_run();
  std::sort(changed_tail_.begin(), changed_tail_.end());
  return MergeSweepFrom(dataset, base, level->index, changed_tail_,
                        point_of, product.zeros, product.mantissa,
                        product.exponent);
}

void ExpectedCostEvaluator::ReserveScratch(size_t n, size_t total_locations) {
  ScratchGuard guard(this);
  events_.reserve(total_locations);
  events_scratch_.reserve(total_locations);
  cdf_.reserve(n);
  changed_.reserve(total_locations);
  changed_tail_.reserve(total_locations);
  swap_first_.reserve(n);
  swap_order_.reserve(n);
  if (options_.parallel_sweep && options_.sweep_pool != nullptr) {
    // Segmented-engine buffers (~21 bytes/location) only where the
    // engine can actually run: worker evaluators inside a pool keep
    // sweep_pool null and must not hold dead reservations.
    perm_.reserve(total_locations);
    perm_scratch_.reserve(total_locations);
    inv_.reserve(total_locations);
    ratio_.reserve(total_locations);
    ratio_zero_.reserve(total_locations);
  }
  scratch_reservation_ = std::max(scratch_reservation_, total_locations);
  scratch_reservation_points_ = std::max(scratch_reservation_points_, n);
}

void ExpectedCostEvaluator::CheckScratchReservation() const {
  if (scratch_reservation_ == 0) return;
  UKC_CHECK_GE(events_.capacity(), scratch_reservation_)
      << "ExpectedCostEvaluator: event scratch shrank below its "
         "ReserveScratch reservation mid-trajectory";
  UKC_CHECK_GE(events_scratch_.capacity(), scratch_reservation_)
      << "ExpectedCostEvaluator: radix scratch shrank below its "
         "ReserveScratch reservation mid-trajectory";
  UKC_CHECK_GE(cdf_.capacity(), scratch_reservation_points_)
      << "ExpectedCostEvaluator: CDF scratch shrank below its "
         "ReserveScratch reservation mid-trajectory";
}

size_t ExpectedCostEvaluator::SwapBase::LadderBytes() const {
  // Snapshot CDFs only — the storage compact_swap_ladder shrinks 7n ->
  // 2n doubles. The escalation side tables (bottleneck flags, deep
  // points) exist identically in both variants and are accounted in
  // ParallelCandidateEvaluator::SwapBaseMemoryBytes.
  size_t bytes = 0;
  for (const Snapshot& snapshot : levels) {
    bytes += snapshot.cdf.capacity() * sizeof(double);
  }
  return bytes;
}

template <typename DistanceOfLocation>
void ExpectedCostEvaluator::FillDistanceTable(
    const uncertain::UncertainDataset& dataset, DistanceOfLocation distance) {
  const metric::SiteId* sites = dataset.flat_sites().data();
  const size_t total = dataset.total_locations();
  distance_table_.resize(total);
  for (size_t l = 0; l < total; ++l) {
    distance_table_[l] = distance(sites[l]);
  }
}

Result<MonteCarloEstimate> ExpectedCostEvaluator::MonteCarloOverTable(
    const uncertain::UncertainDataset& dataset, int64_t samples, Rng& rng) {
  if (samples <= 0) {
    return Status::InvalidArgument("MonteCarloCost: samples must be positive");
  }
  const uncertain::RealizationSampler sampler(dataset);
  const size_t n = dataset.n();
  const size_t* offsets = dataset.offsets().data();

  const auto run_chunk = [&](Rng* chunk_rng, int64_t chunk_samples,
                             RunningStats* stats) {
    for (int64_t s = 0; s < chunk_samples; ++s) {
      double worst = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const size_t j = sampler.SamplePoint(*chunk_rng, i);
        const double d = distance_table_[offsets[i] + j];
        if (d > worst) worst = d;
      }
      stats->Add(worst);
    }
  };

  RunningStats stats;
  const int threads =
      static_cast<int>(std::min<int64_t>(options_.monte_carlo_threads, samples));
  if (threads <= 1) {
    run_chunk(&rng, samples, &stats);
  } else {
    // Deterministic fan-out: chunk t draws from a forked child stream,
    // so the estimate depends only on (seed, threads), not scheduling.
    std::vector<Rng> chunk_rngs;
    chunk_rngs.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      chunk_rngs.push_back(rng.Fork(static_cast<uint64_t>(t)));
    }
    std::vector<RunningStats> partial(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const int64_t base = samples / threads;
    const int64_t extra = samples % threads;
    for (int t = 0; t < threads; ++t) {
      const int64_t chunk_samples = base + (t < extra ? 1 : 0);
      workers.emplace_back(run_chunk, &chunk_rngs[t], chunk_samples,
                           &partial[t]);
    }
    for (auto& worker : workers) worker.join();
    for (const RunningStats& p : partial) stats.Merge(p);
  }

  MonteCarloEstimate estimate;
  estimate.mean = stats.Mean();
  estimate.std_error = stats.StdError();
  estimate.samples = samples;
  return estimate;
}

Result<MonteCarloEstimate> ExpectedCostEvaluator::MonteCarloAssignedCost(
    const uncertain::UncertainDataset& dataset, const Assignment& assignment,
    int64_t samples, Rng& rng) {
  ScratchGuard guard(this);
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument("MonteCarloAssignedCost: size mismatch");
  }
  const metric::MetricSpace& space = dataset.space();
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] < 0 || assignment[i] >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("MonteCarloAssignedCost: assignment[%zu]=%d out of range",
                    i, assignment[i]));
    }
  }
  // Assigned targets vary per point, so the fill walks offsets.
  const metric::SiteId* sites = dataset.flat_sites().data();
  const size_t* offsets = dataset.offsets().data();
  distance_table_.resize(dataset.total_locations());
  for (size_t i = 0; i < dataset.n(); ++i) {
    for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
      distance_table_[l] = space.Distance(sites[l], assignment[i]);
    }
  }
  return MonteCarloOverTable(dataset, samples, rng);
}

Result<MonteCarloEstimate> ExpectedCostEvaluator::MonteCarloUnassignedCost(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers, int64_t samples, Rng& rng) {
  ScratchGuard guard(this);
  if (centers.empty()) {
    return Status::InvalidArgument("MonteCarloUnassignedCost: no centers");
  }
  const metric::MetricSpace& space = dataset.space();
  for (metric::SiteId c : centers) {
    if (c < 0 || c >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("MonteCarloUnassignedCost: center %d out of range", c));
    }
  }
  FillDistanceTable(dataset, [&](metric::SiteId site) {
    return space.DistanceToSet(site, centers);
  });
  return MonteCarloOverTable(dataset, samples, rng);
}

}  // namespace cost
}  // namespace ukc
