#include "cost/expected_cost_evaluator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <thread>

#include "common/stats.h"
#include "common/strings.h"
#include "metric/euclidean_space.h"
#include "uncertain/sampler.h"

namespace ukc {
namespace cost {

namespace {

// Distance from `from` to the nearest row of the gathered block
// `centers` (count rows of length dim) under `norm`.
double FlatDistanceToSet(metric::Norm norm, const double* from,
                         const double* centers, size_t count, size_t dim) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < count; ++c) {
    const double d =
        metric::NormDistanceKernel(norm, from, centers + c * dim, dim);
    if (d < best) best = d;
  }
  return best;
}

}  // namespace

ExpectedCostEvaluator::ScratchGuard::ScratchGuard(
    ExpectedCostEvaluator* evaluator)
    : evaluator_(evaluator) {
  const std::thread::id self = std::this_thread::get_id();
  std::thread::id expected{};  // No owner.
  if (!evaluator_->owner_.compare_exchange_strong(
          expected, self, std::memory_order_acquire) &&
      expected != self) {
    UKC_CHECK(false) << "ExpectedCostEvaluator used concurrently from two "
                        "threads; it is mutable scratch — create one "
                        "evaluator per thread (see "
                        "cost::ParallelCandidateEvaluator)";
  }
  // Only the owning thread touches the depth counter.
  ++evaluator_->owner_depth_;
}

ExpectedCostEvaluator::ScratchGuard::~ScratchGuard() {
  if (--evaluator_->owner_depth_ == 0) {
    evaluator_->owner_.store(std::thread::id(), std::memory_order_release);
  }
}

namespace {

// Maps a double to a uint64 whose unsigned order matches the double's
// numeric order (the standard sign-flip transform).
inline uint64_t OrderedBits(double v) {
  const uint64_t bits = std::bit_cast<uint64_t>(v);
  return (bits & (1ULL << 63)) ? ~bits : (bits | (1ULL << 63));
}

// Below this, std::sort's cache behavior beats the fixed radix overhead
// (four 65536-entry histograms).
constexpr size_t kRadixSortCutover = 2048;

// Running P = Π_{F_i > 0} F_i over the sweep, as a mantissa/exponent
// pair renormalized lazily when the mantissa leaves [2^-16, 2^16):
// power-of-two scaling is exact, so lazy renormalization changes no
// bits, and the pair cannot underflow the way a plain double product
// over many small CDFs would. The band is kept narrow so that even a
// pathological new/old ratio (old as small as ~1e-290 still satisfies
// Build's p > 0) multiplies a mantissa ≤ 2^16 and stays finite. The
// unclamped ratio keeps the telescoping exact even when round-off
// pushes a final CDF past 1. All four sweep variants (full sort-sweep,
// swap-base snapshot, the snapshot pre-application, and the tail
// merge) share this.
struct CdfProduct {
  size_t zeros;  // Variables still at F_i = 0 (product reads as 0).
  double mantissa = 1.0;
  int exponent = 0;

  explicit CdfProduct(size_t variables) : zeros(variables) {}

  /// Folds one CDF step of a variable: old -> new (new > old >= 0).
  void Apply(double old_cdf, double new_cdf) {
    if (old_cdf == 0.0) {
      --zeros;
      mantissa *= new_cdf;
    } else {
      mantissa *= new_cdf / old_cdf;
    }
    if (mantissa < 0x1p-16 || mantissa >= 0x1p16) {
      int shift;
      mantissa = std::frexp(mantissa, &shift);
      exponent += shift;
    }
  }

  /// Π F_i, or 0 while some variable's CDF is still empty.
  double Value() const {
    return zeros > 0 ? 0.0 : std::ldexp(mantissa, exponent);
  }
};

}  // namespace

void ExpectedCostEvaluator::SortEventsByValue() {
  const size_t count = events_.size();
  if (count < kRadixSortCutover) {
    std::sort(events_.begin(), events_.end(),
              [](const Event& a, const Event& b) { return a.value < b.value; });
    return;
  }
  // LSD radix, 4 passes of 16 bits over the order-preserving key. One
  // histogram pass, then per-digit scatters ping-ponging between the
  // event buffer and its scratch twin; digit positions where every key
  // agrees are skipped (typical for the high exponent bits of a
  // distance distribution).
  constexpr int kPasses = 4;
  constexpr size_t kBuckets = 65536;
  events_scratch_.resize(count);
  radix_counts_.assign(kPasses * kBuckets, 0);
  for (const Event& event : events_) {
    const uint64_t key = OrderedBits(event.value);
    for (int p = 0; p < kPasses; ++p) {
      ++radix_counts_[p * kBuckets + ((key >> (16 * p)) & 0xFFFF)];
    }
  }
  Event* src = events_.data();
  Event* dst = events_scratch_.data();
  bool swapped = false;
  for (int p = 0; p < kPasses; ++p) {
    uint32_t* counts = radix_counts_.data() + p * kBuckets;
    const uint64_t first_digit = (OrderedBits(src[0].value) >> (16 * p)) & 0xFFFF;
    if (counts[first_digit] == count) continue;  // All keys share this digit.
    uint32_t running = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      const uint32_t c = counts[b];
      counts[b] = running;
      running += c;
    }
    for (size_t i = 0; i < count; ++i) {
      const uint64_t digit = (OrderedBits(src[i].value) >> (16 * p)) & 0xFFFF;
      dst[counts[digit]++] = src[i];
    }
    std::swap(src, dst);
    swapped = !swapped;
  }
  if (swapped) events_.swap(events_scratch_);
}

double ExpectedCostEvaluator::SweepEvents(size_t num_variables) {
  UKC_CHECK_GT(num_variables, 0u);
  SortEventsByValue();
  cdf_.assign(num_variables, 0.0);

  // Sweep the value axis maintaining F_i (per-variable CDF) and the
  // running product P = Π_{F_i > 0} F_i (see CdfProduct).
  CdfProduct product(num_variables);
  KahanSum expectation;
  double previous_cdf_product = 0.0;  // P(max <= previous value).

  const size_t count = events_.size();
  size_t e = 0;
  while (e < count) {
    const double value = events_[e].value;
    // Apply every event at this exact value.
    while (e < count && events_[e].value == value) {
      const Event& event = events_[e];
      const double old_cdf = cdf_[event.index];
      const double new_cdf = old_cdf + event.probability;
      cdf_[event.index] = new_cdf;
      product.Apply(old_cdf, new_cdf);
      ++e;
    }
    if (product.zeros == 0) {
      const double cdf_product = product.Value();
      const double mass = cdf_product - previous_cdf_product;
      if (mass > 0.0) expectation.Add(value * mass);
      previous_cdf_product = cdf_product;
    }
  }
  return expectation.Total();
}

double ExpectedCostEvaluator::ExpectedMaxOfIndependent(
    std::span<const DiscreteDistribution> distributions) {
  ScratchGuard guard(this);
  UKC_CHECK(!distributions.empty());
  const size_t n = distributions.size();
  size_t total = 0;
  for (const auto& d : distributions) total += d.size();
  events_.clear();
  events_.reserve(total);
  for (size_t i = 0; i < n; ++i) {
    UKC_CHECK(!distributions[i].empty());
    for (const auto& [value, probability] : distributions[i]) {
      UKC_CHECK_GT(probability, 0.0);
      events_.push_back(Event{value, static_cast<uint32_t>(i), 0, probability});
    }
  }
  return SweepEvents(n);
}

Result<double> ExpectedCostEvaluator::AssignedCost(
    const uncertain::UncertainDataset& dataset, const Assignment& assignment) {
  ScratchGuard guard(this);
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument(
        StrFormat("ExactAssignedCost: assignment covers %zu points, dataset "
                  "has %zu",
                  assignment.size(), dataset.n()));
  }
  const metric::MetricSpace& space = dataset.space();
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] < 0 || assignment[i] >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("ExactAssignedCost: assignment[%zu]=%d out of range", i,
                    assignment[i]));
    }
  }
  if (dataset.n() == 0) return 0.0;

  // Stream the flat location arrays: sites/probs are contiguous; only
  // the per-point target changes at offset boundaries.
  const metric::SiteId* sites = dataset.flat_sites().data();
  const double* probabilities = dataset.flat_probabilities().data();
  const size_t* offsets = dataset.offsets().data();
  events_.clear();
  events_.reserve(dataset.total_locations());
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  if (euclidean != nullptr) {
    // Distances evaluated straight off the coordinate arena.
    const size_t dim = euclidean->dim();
    const metric::Norm norm = euclidean->norm();
    for (size_t i = 0; i < dataset.n(); ++i) {
      const double* target = euclidean->coords(assignment[i]);
      for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
        events_.push_back(Event{
            metric::NormDistanceKernel(norm, euclidean->coords(sites[l]),
                                       target, dim),
            static_cast<uint32_t>(i), static_cast<uint32_t>(l),
            probabilities[l]});
      }
    }
  } else {
    for (size_t i = 0; i < dataset.n(); ++i) {
      for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
        events_.push_back(Event{space.Distance(sites[l], assignment[i]),
                                static_cast<uint32_t>(i),
                                static_cast<uint32_t>(l), probabilities[l]});
      }
    }
  }
  return SweepEvents(dataset.n());
}

Status ExpectedCostEvaluator::FillUnassignedEvents(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers) {
  if (centers.empty()) {
    return Status::InvalidArgument("ExactUnassignedCost: no centers");
  }
  const metric::MetricSpace& space = dataset.space();
  for (metric::SiteId c : centers) {
    if (c < 0 || c >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("ExactUnassignedCost: center %d out of range", c));
    }
  }

  const metric::SiteId* sites = dataset.flat_sites().data();
  const double* probabilities = dataset.flat_probabilities().data();
  const size_t* offsets = dataset.offsets().data();
  const size_t total = dataset.total_locations();
  events_.clear();
  events_.reserve(total);
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  if (euclidean != nullptr && euclidean->norm() == metric::Norm::kL2 &&
      centers.size() >= options_.kdtree_cutover) {
    // With many centers in a Euclidean space, nearest-center queries
    // dominate; a kd-tree over the centers turns each O(k) scan into a
    // near-logarithmic search. The tree is cached across calls and only
    // rebuilt when the gathered center coordinates actually change.
    euclidean->GatherCoords(centers, &center_coords_);
    if (!tree_.has_value() || tree_dim_ != euclidean->dim() ||
        tree_coords_ != center_coords_) {
      UKC_ASSIGN_OR_RETURN(
          geometry::KdTree tree,
          geometry::KdTree::BuildFlat(center_coords_, euclidean->dim()));
      tree_ = std::move(tree);
      tree_dim_ = euclidean->dim();
      tree_coords_ = center_coords_;
    }
    const geometry::KdTree& tree = *tree_;
    size_t i = 0;
    for (size_t l = 0; l < total; ++l) {
      while (l >= offsets[i + 1]) ++i;
      events_.push_back(Event{
          std::sqrt(tree.Nearest(euclidean->coords(sites[l])).squared_distance),
          static_cast<uint32_t>(i), static_cast<uint32_t>(l),
          probabilities[l]});
    }
    return Status::OK();
  }
  if (euclidean != nullptr) {
    // Flat linear scan over the gathered center block.
    const size_t dim = euclidean->dim();
    const metric::Norm norm = euclidean->norm();
    euclidean->GatherCoords(centers, &center_coords_);
    size_t i = 0;
    for (size_t l = 0; l < total; ++l) {
      while (l >= offsets[i + 1]) ++i;
      events_.push_back(
          Event{FlatDistanceToSet(norm, euclidean->coords(sites[l]),
                                  center_coords_.data(), centers.size(), dim),
                static_cast<uint32_t>(i), static_cast<uint32_t>(l),
                probabilities[l]});
    }
    return Status::OK();
  }
  size_t i = 0;
  for (size_t l = 0; l < total; ++l) {
    while (l >= offsets[i + 1]) ++i;
    events_.push_back(Event{space.DistanceToSet(sites[l], centers),
                            static_cast<uint32_t>(i),
                            static_cast<uint32_t>(l), probabilities[l]});
  }
  return Status::OK();
}

Result<double> ExpectedCostEvaluator::UnassignedCost(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers) {
  ScratchGuard guard(this);
  UKC_RETURN_IF_ERROR(FillUnassignedEvents(dataset, centers));
  if (dataset.n() == 0) return 0.0;
  return SweepEvents(dataset.n());
}

Result<std::vector<double>> ExpectedCostEvaluator::UnassignedCostBatch(
    const uncertain::UncertainDataset& dataset,
    const std::vector<std::vector<metric::SiteId>>& center_sets) {
  ScratchGuard guard(this);
  std::vector<double> values;
  values.reserve(center_sets.size());
  for (const auto& centers : center_sets) {
    UKC_ASSIGN_OR_RETURN(double value, UnassignedCost(dataset, centers));
    values.push_back(value);
  }
  return values;
}

Status ExpectedCostEvaluator::BuildSwapBase(
    const uncertain::UncertainDataset& dataset,
    std::span<const double> base_distances, std::span<const uint32_t> point_of,
    SwapBase* out) {
  ScratchGuard guard(this);
  UKC_CHECK(out != nullptr);
  const size_t total = dataset.total_locations();
  if (base_distances.size() != total || point_of.size() != total) {
    return Status::InvalidArgument(
        "BuildSwapBase: table sizes must equal total_locations");
  }
  const size_t n = dataset.n();
  const double* probabilities = dataset.flat_probabilities().data();
  const size_t* offsets = dataset.offsets().data();

  // Emission threshold: the largest per-point minimum base distance.
  // Until the sweep passes it, some CDF is still 0 and Π F_i = 0.
  std::vector<double>& first = out->snapshot_cdf;  // Reused below.
  first.assign(n, std::numeric_limits<double>::infinity());
  for (size_t i = 0; i < n; ++i) {
    for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
      first[i] = std::min(first[i], base_distances[l]);
    }
  }
  double threshold = 0.0;
  for (double f : first) threshold = std::max(threshold, f);
  out->threshold = threshold;
  out->bottleneck.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (first[i] >= threshold) out->bottleneck[i] = 1;
  }

  // Sorted (value, location) base event stream. The LSD radix is stable
  // over the ascending location fill; the small-input std::sort spells
  // the tiebreak out.
  events_.clear();
  events_.reserve(total);
  for (size_t l = 0; l < total; ++l) {
    events_.push_back(Event{base_distances[l], point_of[l],
                            static_cast<uint32_t>(l), probabilities[l]});
  }
  if (events_.size() < kRadixSortCutover) {
    std::sort(events_.begin(), events_.end(),
              [](const Event& a, const Event& b) {
                return a.value != b.value ? a.value < b.value
                                          : a.location < b.location;
              });
  } else {
    SortEventsByValue();
  }
  out->events.assign(events_.begin(), events_.end());

  // Sweep snapshot just below the threshold: per-point CDFs, the zero
  // count, and the running Π F_i mantissa/exponent. No mass can have
  // been emitted yet (a bottleneck point is still at zero).
  out->snapshot_cdf.assign(n, 0.0);
  CdfProduct product(n);
  size_t s = 0;
  for (; s < total && out->events[s].value < threshold; ++s) {
    const Event& event = out->events[s];
    const double old_cdf = out->snapshot_cdf[event.index];
    const double new_cdf = old_cdf + event.probability;
    out->snapshot_cdf[event.index] = new_cdf;
    product.Apply(old_cdf, new_cdf);
  }
  out->snapshot_index = s;
  out->snapshot_zeros = product.zeros;
  out->snapshot_mantissa = product.mantissa;
  out->snapshot_exponent = product.exponent;
  return Status::OK();
}

double ExpectedCostEvaluator::MergeSweepFrom(
    const uncertain::UncertainDataset& dataset, const SwapBase& base,
    size_t a_begin, std::span<const std::pair<double, uint32_t>> changed,
    std::span<const uint32_t> point_of, size_t zeros, double mantissa,
    int exponent) {
  const double* probabilities = dataset.flat_probabilities().data();
  const Event* events = base.events.data();
  const size_t total = base.events.size();
  CdfProduct product(0);
  product.zeros = zeros;
  product.mantissa = mantissa;
  product.exponent = exponent;
  KahanSum expectation;
  double previous_cdf_product = 0.0;

  const size_t changed_count = changed.size();
  size_t a = a_begin;
  size_t b = 0;
  const auto skip_changed = [&] {
    while (a < total && changed_stamp_[events[a].location] == stamp_) ++a;
  };
  // Single-pass merge: take the lexicographically smaller (value, l)
  // head, apply it, and emit mass once the next head moves past the
  // current value (the streams are nondecreasing, so "different" means
  // "greater"). va/vb mirror the stream heads to keep the loop
  // load-light; the base stream walk is sequential memory.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  skip_changed();
  double va = a < total ? events[a].value : kInf;
  double vb = b < changed_count ? changed[b].first : kInf;
  while (a < total || b < changed_count) {
    double value;
    bool take_base;
    if (va < vb) {
      take_base = true;
    } else if (vb < va) {
      take_base = false;
    } else {
      take_base = b >= changed_count ||
                  (a < total && events[a].location < changed[b].second);
    }
    if (take_base) {
      value = va;
      const Event& event = events[a];
      const double old_cdf = cdf_[event.index];
      const double new_cdf = old_cdf + event.probability;
      cdf_[event.index] = new_cdf;
      product.Apply(old_cdf, new_cdf);
      ++a;
      skip_changed();
      va = a < total ? events[a].value : kInf;
    } else {
      value = vb;
      const uint32_t l = changed[b].second;
      const uint32_t i = point_of[l];
      const double old_cdf = cdf_[i];
      const double new_cdf = old_cdf + probabilities[l];
      cdf_[i] = new_cdf;
      product.Apply(old_cdf, new_cdf);
      ++b;
      vb = b < changed_count ? changed[b].first : kInf;
    }
    if (va != value && vb != value && product.zeros == 0) {
      const double cdf_product = product.Value();
      const double mass = cdf_product - previous_cdf_product;
      if (mass > 0.0) expectation.Add(value * mass);
      previous_cdf_product = cdf_product;
    }
  }
  return expectation.Total();
}

Result<double> ExpectedCostEvaluator::UnassignedCostSwapPresorted(
    const uncertain::UncertainDataset& dataset,
    std::span<const double> base_distances, const SwapBase& base,
    std::span<const uint32_t> point_of, metric::SiteId extra) {
  ScratchGuard guard(this);
  const metric::MetricSpace& space = dataset.space();
  if (extra < 0 || extra >= space.num_sites()) {
    return Status::InvalidArgument(
        StrFormat("UnassignedCostSwapPresorted: center %d out of range", extra));
  }
  const size_t total = dataset.total_locations();
  if (base_distances.size() != total || base.events.size() != total ||
      point_of.size() != total || base.snapshot_cdf.size() != dataset.n()) {
    return Status::InvalidArgument(
        "UnassignedCostSwapPresorted: table sizes must match the dataset");
  }
  const metric::SiteId* sites = dataset.flat_sites().data();
  const double* probabilities = dataset.flat_probabilities().data();

  // The candidate's improved locations (d < base), stamped out of the
  // base stream. A candidate that improves a *bottleneck* point below
  // the threshold moves the emission start earlier than the snapshot,
  // so it must take the full-merge fallback.
  if (changed_stamp_.size() != total) changed_stamp_.assign(total, 0);
  if (++stamp_ == 0) {  // Stamp wrapped: reset the mask once.
    std::fill(changed_stamp_.begin(), changed_stamp_.end(), 0);
    stamp_ = 1;
  }
  changed_.clear();
  const double threshold = base.threshold;
  bool fallback = false;
  const auto consider = [&](double d, size_t l) {
    changed_.emplace_back(d, static_cast<uint32_t>(l));
    changed_stamp_[l] = stamp_;
    if (d < threshold && base.bottleneck[point_of[l]]) fallback = true;
  };
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  if (euclidean != nullptr && euclidean->norm() == metric::Norm::kL2) {
    // L2: compare *squared* distances — the sqrt is monotone, so
    // d² < b² decides d < b, and only the m winners pay a sqrt. (A
    // rounding tie after sqrt just moves the event between the two
    // streams; the applied (value, point, probability) multiset is the
    // same.)
    const size_t dim = euclidean->dim();
    const double* target = euclidean->coords(extra);
    for (size_t l = 0; l < total; ++l) {
      const double dsq =
          geometry::SquaredDistanceKernel(euclidean->coords(sites[l]), target, dim);
      const double b = base_distances[l];
      if (dsq < b * b) consider(std::sqrt(dsq), l);
    }
  } else if (euclidean != nullptr) {
    const size_t dim = euclidean->dim();
    const metric::Norm norm = euclidean->norm();
    const double* target = euclidean->coords(extra);
    for (size_t l = 0; l < total; ++l) {
      const double d = metric::NormDistanceKernel(
          norm, euclidean->coords(sites[l]), target, dim);
      if (d < base_distances[l]) consider(d, l);
    }
  } else {
    for (size_t l = 0; l < total; ++l) {
      const double d = space.Distance(sites[l], extra);
      if (d < base_distances[l]) consider(d, l);
    }
  }

  const size_t num_variables = dataset.n();
  if (fallback) {
    // Full merge from scratch: every event replayed.
    std::sort(changed_.begin(), changed_.end());
    cdf_.assign(num_variables, 0.0);
    return MergeSweepFrom(dataset, base, 0, changed_, point_of, num_variables,
                          1.0, 0);
  }

  // Snapshot path. A changed location below the threshold only *moves*
  // CDF mass that is already below it:
  //   - old value also below (base[l] < threshold): the snapshot holds
  //     the same mass at the old value — since no mass is emitted below
  //     the threshold, only the accumulated CDFs matter, so nothing to
  //     do (the order of additions differs by ~1 ulp from a full
  //     replay);
  //   - old value at/above the threshold: the mass newly drops below —
  //     apply it on top of the snapshot state;
  //   - new value at/above the threshold: a regular tail-merge event.
  cdf_.assign(base.snapshot_cdf.begin(), base.snapshot_cdf.end());
  CdfProduct product(0);
  product.zeros = base.snapshot_zeros;
  product.mantissa = base.snapshot_mantissa;
  product.exponent = base.snapshot_exponent;
  changed_tail_.clear();
  for (const auto& [d, l] : changed_) {
    if (d >= threshold) {
      changed_tail_.emplace_back(d, l);
      continue;
    }
    if (base_distances[l] >= threshold) {
      const uint32_t i = point_of[l];
      const double old_cdf = cdf_[i];
      const double new_cdf = old_cdf + probabilities[l];
      cdf_[i] = new_cdf;
      product.Apply(old_cdf, new_cdf);
    }
  }
  std::sort(changed_tail_.begin(), changed_tail_.end());
  return MergeSweepFrom(dataset, base, base.snapshot_index, changed_tail_,
                        point_of, product.zeros, product.mantissa,
                        product.exponent);
}

template <typename DistanceOfLocation>
void ExpectedCostEvaluator::FillDistanceTable(
    const uncertain::UncertainDataset& dataset, DistanceOfLocation distance) {
  const metric::SiteId* sites = dataset.flat_sites().data();
  const size_t total = dataset.total_locations();
  distance_table_.resize(total);
  for (size_t l = 0; l < total; ++l) {
    distance_table_[l] = distance(sites[l]);
  }
}

Result<MonteCarloEstimate> ExpectedCostEvaluator::MonteCarloOverTable(
    const uncertain::UncertainDataset& dataset, int64_t samples, Rng& rng) {
  if (samples <= 0) {
    return Status::InvalidArgument("MonteCarloCost: samples must be positive");
  }
  const uncertain::RealizationSampler sampler(dataset);
  const size_t n = dataset.n();
  const size_t* offsets = dataset.offsets().data();

  const auto run_chunk = [&](Rng* chunk_rng, int64_t chunk_samples,
                             RunningStats* stats) {
    for (int64_t s = 0; s < chunk_samples; ++s) {
      double worst = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const size_t j = sampler.SamplePoint(*chunk_rng, i);
        const double d = distance_table_[offsets[i] + j];
        if (d > worst) worst = d;
      }
      stats->Add(worst);
    }
  };

  RunningStats stats;
  const int threads =
      static_cast<int>(std::min<int64_t>(options_.monte_carlo_threads, samples));
  if (threads <= 1) {
    run_chunk(&rng, samples, &stats);
  } else {
    // Deterministic fan-out: chunk t draws from a forked child stream,
    // so the estimate depends only on (seed, threads), not scheduling.
    std::vector<Rng> chunk_rngs;
    chunk_rngs.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      chunk_rngs.push_back(rng.Fork(static_cast<uint64_t>(t)));
    }
    std::vector<RunningStats> partial(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const int64_t base = samples / threads;
    const int64_t extra = samples % threads;
    for (int t = 0; t < threads; ++t) {
      const int64_t chunk_samples = base + (t < extra ? 1 : 0);
      workers.emplace_back(run_chunk, &chunk_rngs[t], chunk_samples,
                           &partial[t]);
    }
    for (auto& worker : workers) worker.join();
    for (const RunningStats& p : partial) stats.Merge(p);
  }

  MonteCarloEstimate estimate;
  estimate.mean = stats.Mean();
  estimate.std_error = stats.StdError();
  estimate.samples = samples;
  return estimate;
}

Result<MonteCarloEstimate> ExpectedCostEvaluator::MonteCarloAssignedCost(
    const uncertain::UncertainDataset& dataset, const Assignment& assignment,
    int64_t samples, Rng& rng) {
  ScratchGuard guard(this);
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument("MonteCarloAssignedCost: size mismatch");
  }
  const metric::MetricSpace& space = dataset.space();
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] < 0 || assignment[i] >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("MonteCarloAssignedCost: assignment[%zu]=%d out of range",
                    i, assignment[i]));
    }
  }
  // Assigned targets vary per point, so the fill walks offsets.
  const metric::SiteId* sites = dataset.flat_sites().data();
  const size_t* offsets = dataset.offsets().data();
  distance_table_.resize(dataset.total_locations());
  for (size_t i = 0; i < dataset.n(); ++i) {
    for (size_t l = offsets[i]; l < offsets[i + 1]; ++l) {
      distance_table_[l] = space.Distance(sites[l], assignment[i]);
    }
  }
  return MonteCarloOverTable(dataset, samples, rng);
}

Result<MonteCarloEstimate> ExpectedCostEvaluator::MonteCarloUnassignedCost(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers, int64_t samples, Rng& rng) {
  ScratchGuard guard(this);
  if (centers.empty()) {
    return Status::InvalidArgument("MonteCarloUnassignedCost: no centers");
  }
  const metric::MetricSpace& space = dataset.space();
  for (metric::SiteId c : centers) {
    if (c < 0 || c >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("MonteCarloUnassignedCost: center %d out of range", c));
    }
  }
  FillDistanceTable(dataset, [&](metric::SiteId site) {
    return space.DistanceToSet(site, centers);
  });
  return MonteCarloOverTable(dataset, samples, rng);
}

}  // namespace cost
}  // namespace ukc
