#include "cost/expected_cost_evaluator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <thread>

#include "common/stats.h"
#include "common/strings.h"
#include "metric/euclidean_space.h"
#include "uncertain/sampler.h"

namespace ukc {
namespace cost {

namespace {

// Distance from `from` to the nearest row of the gathered block
// `centers` (count rows of length dim) under `norm`.
double FlatDistanceToSet(metric::Norm norm, const double* from,
                         const double* centers, size_t count, size_t dim) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < count; ++c) {
    const double d =
        metric::NormDistanceKernel(norm, from, centers + c * dim, dim);
    if (d < best) best = d;
  }
  return best;
}

}  // namespace

namespace {

// Maps a double to a uint64 whose unsigned order matches the double's
// numeric order (the standard sign-flip transform).
inline uint64_t OrderedBits(double v) {
  const uint64_t bits = std::bit_cast<uint64_t>(v);
  return (bits & (1ULL << 63)) ? ~bits : (bits | (1ULL << 63));
}

// Below this, std::sort's cache behavior beats the fixed radix overhead
// (four 65536-entry histograms).
constexpr size_t kRadixSortCutover = 2048;

}  // namespace

void ExpectedCostEvaluator::SortEventsByValue() {
  const size_t count = events_.size();
  if (count < kRadixSortCutover) {
    std::sort(events_.begin(), events_.end(),
              [](const Event& a, const Event& b) { return a.value < b.value; });
    return;
  }
  // LSD radix, 4 passes of 16 bits over the order-preserving key. One
  // histogram pass, then per-digit scatters ping-ponging between the
  // event buffer and its scratch twin; digit positions where every key
  // agrees are skipped (typical for the high exponent bits of a
  // distance distribution).
  constexpr int kPasses = 4;
  constexpr size_t kBuckets = 65536;
  events_scratch_.resize(count);
  radix_counts_.assign(kPasses * kBuckets, 0);
  for (const Event& event : events_) {
    const uint64_t key = OrderedBits(event.value);
    for (int p = 0; p < kPasses; ++p) {
      ++radix_counts_[p * kBuckets + ((key >> (16 * p)) & 0xFFFF)];
    }
  }
  Event* src = events_.data();
  Event* dst = events_scratch_.data();
  bool swapped = false;
  for (int p = 0; p < kPasses; ++p) {
    uint32_t* counts = radix_counts_.data() + p * kBuckets;
    const uint64_t first_digit = (OrderedBits(src[0].value) >> (16 * p)) & 0xFFFF;
    if (counts[first_digit] == count) continue;  // All keys share this digit.
    uint32_t running = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      const uint32_t c = counts[b];
      counts[b] = running;
      running += c;
    }
    for (size_t i = 0; i < count; ++i) {
      const uint64_t digit = (OrderedBits(src[i].value) >> (16 * p)) & 0xFFFF;
      dst[counts[digit]++] = src[i];
    }
    std::swap(src, dst);
    swapped = !swapped;
  }
  if (swapped) events_.swap(events_scratch_);
}

double ExpectedCostEvaluator::SweepEvents(size_t num_variables) {
  UKC_CHECK_GT(num_variables, 0u);
  SortEventsByValue();
  cdf_.assign(num_variables, 0.0);

  // Sweep the value axis maintaining F_i (per-variable CDF), the number
  // of variables still at F_i = 0, and P = Π_{F_i > 0} F_i. The product
  // is kept as a frexp-normalized (mantissa, exponent) pair and updated
  // multiplicatively by new/old per event: ~1 ulp of relative error per
  // update and no transcendental calls, yet it cannot underflow the way
  // a plain double product over many small CDFs would.
  size_t zeros = num_variables;
  double mantissa = 1.0;
  int exponent = 0;
  KahanSum expectation;
  double previous_cdf_product = 0.0;  // P(max <= previous value).

  const size_t count = events_.size();
  size_t e = 0;
  while (e < count) {
    const double value = events_[e].value;
    // Apply every event at this exact value.
    while (e < count && events_[e].value == value) {
      const Event& event = events_[e];
      const double old_cdf = cdf_[event.index];
      const double new_cdf = old_cdf + event.probability;
      cdf_[event.index] = new_cdf;
      // The unclamped ratio keeps the telescoping exact: dividing out
      // old and multiplying in new leaves Π F_i consistent even when
      // round-off pushes a final CDF slightly past 1.
      if (old_cdf == 0.0) {
        --zeros;
        mantissa *= new_cdf;
      } else {
        mantissa *= new_cdf / old_cdf;
      }
      int shift;
      mantissa = std::frexp(mantissa, &shift);
      exponent += shift;
      ++e;
    }
    if (zeros == 0) {
      const double cdf_product = std::ldexp(mantissa, exponent);
      const double mass = cdf_product - previous_cdf_product;
      if (mass > 0.0) expectation.Add(value * mass);
      previous_cdf_product = cdf_product;
    }
  }
  return expectation.Total();
}

double ExpectedCostEvaluator::ExpectedMaxOfIndependent(
    std::span<const DiscreteDistribution> distributions) {
  UKC_CHECK(!distributions.empty());
  const size_t n = distributions.size();
  size_t total = 0;
  for (const auto& d : distributions) total += d.size();
  events_.clear();
  events_.reserve(total);
  for (size_t i = 0; i < n; ++i) {
    UKC_CHECK(!distributions[i].empty());
    for (const auto& [value, probability] : distributions[i]) {
      UKC_CHECK_GT(probability, 0.0);
      events_.push_back(Event{value, static_cast<uint32_t>(i), probability});
    }
  }
  return SweepEvents(n);
}

Result<double> ExpectedCostEvaluator::AssignedCost(
    const uncertain::UncertainDataset& dataset, const Assignment& assignment) {
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument(
        StrFormat("ExactAssignedCost: assignment covers %zu points, dataset "
                  "has %zu",
                  assignment.size(), dataset.n()));
  }
  const metric::MetricSpace& space = dataset.space();
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] < 0 || assignment[i] >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("ExactAssignedCost: assignment[%zu]=%d out of range", i,
                    assignment[i]));
    }
  }
  if (dataset.n() == 0) return 0.0;

  events_.clear();
  events_.reserve(dataset.total_locations());
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  if (euclidean != nullptr) {
    // Distances evaluated straight off the coordinate arena.
    const size_t dim = euclidean->dim();
    const metric::Norm norm = euclidean->norm();
    for (size_t i = 0; i < dataset.n(); ++i) {
      const double* target = euclidean->coords(assignment[i]);
      for (const uncertain::Location& loc : dataset.point(i).locations()) {
        events_.push_back(Event{
            metric::NormDistanceKernel(norm, euclidean->coords(loc.site),
                                       target, dim),
            static_cast<uint32_t>(i), loc.probability});
      }
    }
  } else {
    for (size_t i = 0; i < dataset.n(); ++i) {
      for (const uncertain::Location& loc : dataset.point(i).locations()) {
        events_.push_back(Event{space.Distance(loc.site, assignment[i]),
                                static_cast<uint32_t>(i), loc.probability});
      }
    }
  }
  return SweepEvents(dataset.n());
}

Status ExpectedCostEvaluator::FillUnassignedEvents(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers) {
  if (centers.empty()) {
    return Status::InvalidArgument("ExactUnassignedCost: no centers");
  }
  const metric::MetricSpace& space = dataset.space();
  for (metric::SiteId c : centers) {
    if (c < 0 || c >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("ExactUnassignedCost: center %d out of range", c));
    }
  }

  events_.clear();
  events_.reserve(dataset.total_locations());
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  if (euclidean != nullptr && euclidean->norm() == metric::Norm::kL2 &&
      centers.size() >= options_.kdtree_cutover) {
    // With many centers in a Euclidean space, nearest-center queries
    // dominate; a kd-tree over the centers turns each O(k) scan into a
    // near-logarithmic search. The tree is cached across calls and only
    // rebuilt when the gathered center coordinates actually change.
    euclidean->GatherCoords(centers, &center_coords_);
    if (!tree_.has_value() || tree_dim_ != euclidean->dim() ||
        tree_coords_ != center_coords_) {
      UKC_ASSIGN_OR_RETURN(
          geometry::KdTree tree,
          geometry::KdTree::BuildFlat(center_coords_, euclidean->dim()));
      tree_ = std::move(tree);
      tree_dim_ = euclidean->dim();
      tree_coords_ = center_coords_;
    }
    const geometry::KdTree& tree = *tree_;
    for (size_t i = 0; i < dataset.n(); ++i) {
      for (const uncertain::Location& loc : dataset.point(i).locations()) {
        events_.push_back(Event{
            std::sqrt(
                tree.Nearest(euclidean->coords(loc.site)).squared_distance),
            static_cast<uint32_t>(i), loc.probability});
      }
    }
    return Status::OK();
  }
  if (euclidean != nullptr) {
    // Flat linear scan over the gathered center block.
    const size_t dim = euclidean->dim();
    const metric::Norm norm = euclidean->norm();
    euclidean->GatherCoords(centers, &center_coords_);
    for (size_t i = 0; i < dataset.n(); ++i) {
      for (const uncertain::Location& loc : dataset.point(i).locations()) {
        events_.push_back(
            Event{FlatDistanceToSet(norm, euclidean->coords(loc.site),
                                    center_coords_.data(), centers.size(), dim),
                  static_cast<uint32_t>(i), loc.probability});
      }
    }
    return Status::OK();
  }
  for (size_t i = 0; i < dataset.n(); ++i) {
    for (const uncertain::Location& loc : dataset.point(i).locations()) {
      events_.push_back(Event{space.DistanceToSet(loc.site, centers),
                              static_cast<uint32_t>(i), loc.probability});
    }
  }
  return Status::OK();
}

Result<double> ExpectedCostEvaluator::UnassignedCost(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers) {
  UKC_RETURN_IF_ERROR(FillUnassignedEvents(dataset, centers));
  if (dataset.n() == 0) return 0.0;
  return SweepEvents(dataset.n());
}

Result<std::vector<double>> ExpectedCostEvaluator::UnassignedCostBatch(
    const uncertain::UncertainDataset& dataset,
    const std::vector<std::vector<metric::SiteId>>& center_sets) {
  std::vector<double> values;
  values.reserve(center_sets.size());
  for (const auto& centers : center_sets) {
    UKC_ASSIGN_OR_RETURN(double value, UnassignedCost(dataset, centers));
    values.push_back(value);
  }
  return values;
}

template <typename DistanceOfLocation>
void ExpectedCostEvaluator::FillDistanceTable(
    const uncertain::UncertainDataset& dataset, DistanceOfLocation distance) {
  offsets_.resize(dataset.n() + 1);
  distance_table_.clear();
  distance_table_.reserve(dataset.total_locations());
  for (size_t i = 0; i < dataset.n(); ++i) {
    offsets_[i] = distance_table_.size();
    for (const uncertain::Location& loc : dataset.point(i).locations()) {
      distance_table_.push_back(distance(i, loc.site));
    }
  }
  offsets_[dataset.n()] = distance_table_.size();
}

Result<MonteCarloEstimate> ExpectedCostEvaluator::MonteCarloOverTable(
    const uncertain::UncertainDataset& dataset, int64_t samples, Rng& rng) {
  if (samples <= 0) {
    return Status::InvalidArgument("MonteCarloCost: samples must be positive");
  }
  const uncertain::RealizationSampler sampler(dataset);
  const size_t n = dataset.n();

  const auto run_chunk = [&](Rng* chunk_rng, int64_t chunk_samples,
                             RunningStats* stats) {
    for (int64_t s = 0; s < chunk_samples; ++s) {
      double worst = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const size_t j = sampler.SamplePoint(*chunk_rng, i);
        const double d = distance_table_[offsets_[i] + j];
        if (d > worst) worst = d;
      }
      stats->Add(worst);
    }
  };

  RunningStats stats;
  const int threads =
      static_cast<int>(std::min<int64_t>(options_.monte_carlo_threads, samples));
  if (threads <= 1) {
    run_chunk(&rng, samples, &stats);
  } else {
    // Deterministic fan-out: chunk t draws from a forked child stream,
    // so the estimate depends only on (seed, threads), not scheduling.
    std::vector<Rng> chunk_rngs;
    chunk_rngs.reserve(threads);
    for (int t = 0; t < threads; ++t) {
      chunk_rngs.push_back(rng.Fork(static_cast<uint64_t>(t)));
    }
    std::vector<RunningStats> partial(threads);
    std::vector<std::thread> workers;
    workers.reserve(threads);
    const int64_t base = samples / threads;
    const int64_t extra = samples % threads;
    for (int t = 0; t < threads; ++t) {
      const int64_t chunk_samples = base + (t < extra ? 1 : 0);
      workers.emplace_back(run_chunk, &chunk_rngs[t], chunk_samples,
                           &partial[t]);
    }
    for (auto& worker : workers) worker.join();
    for (const RunningStats& p : partial) stats.Merge(p);
  }

  MonteCarloEstimate estimate;
  estimate.mean = stats.Mean();
  estimate.std_error = stats.StdError();
  estimate.samples = samples;
  return estimate;
}

Result<MonteCarloEstimate> ExpectedCostEvaluator::MonteCarloAssignedCost(
    const uncertain::UncertainDataset& dataset, const Assignment& assignment,
    int64_t samples, Rng& rng) {
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument("MonteCarloAssignedCost: size mismatch");
  }
  const metric::MetricSpace& space = dataset.space();
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] < 0 || assignment[i] >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("MonteCarloAssignedCost: assignment[%zu]=%d out of range",
                    i, assignment[i]));
    }
  }
  FillDistanceTable(dataset, [&](size_t i, metric::SiteId site) {
    return space.Distance(site, assignment[i]);
  });
  return MonteCarloOverTable(dataset, samples, rng);
}

Result<MonteCarloEstimate> ExpectedCostEvaluator::MonteCarloUnassignedCost(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers, int64_t samples, Rng& rng) {
  if (centers.empty()) {
    return Status::InvalidArgument("MonteCarloUnassignedCost: no centers");
  }
  const metric::MetricSpace& space = dataset.space();
  for (metric::SiteId c : centers) {
    if (c < 0 || c >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("MonteCarloUnassignedCost: center %d out of range", c));
    }
  }
  FillDistanceTable(dataset, [&](size_t, metric::SiteId site) {
    return space.DistanceToSet(site, centers);
  });
  return MonteCarloOverTable(dataset, samples, rng);
}

}  // namespace cost
}  // namespace ukc
