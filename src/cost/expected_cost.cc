#include "cost/expected_cost.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/stats.h"
#include "geometry/kdtree.h"
#include "common/strings.h"
#include "uncertain/sampler.h"

namespace ukc {
namespace cost {

namespace {

// An atom of probability mass: variable `index` takes `value` with
// probability `probability`.
struct Event {
  double value;
  uint32_t index;
  double probability;
};

}  // namespace

double ExpectedMaxOfIndependent(std::vector<DiscreteDistribution> distributions) {
  UKC_CHECK(!distributions.empty());
  const size_t n = distributions.size();

  std::vector<Event> events;
  size_t total = 0;
  for (const auto& d : distributions) total += d.size();
  events.reserve(total);
  for (size_t i = 0; i < n; ++i) {
    UKC_CHECK(!distributions[i].empty());
    for (const auto& [value, probability] : distributions[i]) {
      UKC_CHECK_GT(probability, 0.0);
      events.push_back(Event{value, static_cast<uint32_t>(i), probability});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const Event& a, const Event& b) { return a.value < b.value; });

  // Sweep the value axis maintaining F_i (per-variable CDF), the number
  // of variables still at F_i = 0, and log Π_{F_i > 0} F_i.
  std::vector<double> cdf(n, 0.0);
  size_t zeros = n;
  KahanSum log_product;  // Σ log F_i over variables with F_i > 0.
  KahanSum expectation;
  double previous_cdf_product = 0.0;  // P(max <= previous value).

  size_t e = 0;
  while (e < events.size()) {
    const double value = events[e].value;
    // Apply every event at this exact value.
    while (e < events.size() && events[e].value == value) {
      const Event& event = events[e];
      const double old_cdf = cdf[event.index];
      const double new_cdf = old_cdf + event.probability;
      cdf[event.index] = new_cdf;
      // Unclamped logs keep the telescoping exact: subtracting log(old)
      // and adding log(new) leaves Σ log F_i consistent even when
      // round-off pushes a final CDF slightly past 1.
      if (old_cdf == 0.0) {
        --zeros;
      } else {
        log_product.Add(-std::log(old_cdf));
      }
      log_product.Add(std::log(new_cdf));
      ++e;
    }
    const double cdf_product =
        zeros > 0 ? 0.0 : std::exp(log_product.Total());
    const double mass = cdf_product - previous_cdf_product;
    if (mass > 0.0) expectation.Add(value * mass);
    previous_cdf_product = cdf_product;
  }
  return expectation.Total();
}

namespace {

// Builds the per-point distribution of d(P̂_i, target_i) where target_i
// is a fixed site (assigned) or the nearest of several centers
// (unassigned).
template <typename DistanceOfLocation>
std::vector<DiscreteDistribution> BuildDistributions(
    const uncertain::UncertainDataset& dataset, DistanceOfLocation distance) {
  std::vector<DiscreteDistribution> distributions(dataset.n());
  for (size_t i = 0; i < dataset.n(); ++i) {
    const uncertain::UncertainPoint& p = dataset.point(i);
    distributions[i].reserve(p.num_locations());
    for (const uncertain::Location& loc : p.locations()) {
      distributions[i].emplace_back(distance(i, loc.site), loc.probability);
    }
  }
  return distributions;
}

}  // namespace

Result<double> ExactAssignedCost(const uncertain::UncertainDataset& dataset,
                                 const Assignment& assignment) {
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument(
        StrFormat("ExactAssignedCost: assignment covers %zu points, dataset "
                  "has %zu",
                  assignment.size(), dataset.n()));
  }
  const metric::MetricSpace& space = dataset.space();
  for (size_t i = 0; i < assignment.size(); ++i) {
    if (assignment[i] < 0 || assignment[i] >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("ExactAssignedCost: assignment[%zu]=%d out of range", i,
                    assignment[i]));
    }
  }
  return ExpectedMaxOfIndependent(BuildDistributions(
      dataset, [&](size_t i, metric::SiteId site) {
        return space.Distance(site, assignment[i]);
      }));
}

Result<double> ExactUnassignedCost(const uncertain::UncertainDataset& dataset,
                                   const std::vector<metric::SiteId>& centers) {
  if (centers.empty()) {
    return Status::InvalidArgument("ExactUnassignedCost: no centers");
  }
  const metric::MetricSpace& space = dataset.space();
  for (metric::SiteId c : centers) {
    if (c < 0 || c >= space.num_sites()) {
      return Status::InvalidArgument(
          StrFormat("ExactUnassignedCost: center %d out of range", c));
    }
  }
  // With many centers in a Euclidean space, nearest-center queries
  // dominate; a kd-tree over the centers turns each O(k) scan into a
  // near-logarithmic search.
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  if (euclidean != nullptr && euclidean->norm() == metric::Norm::kL2 &&
      centers.size() >= 16) {
    std::vector<geometry::Point> center_points;
    center_points.reserve(centers.size());
    for (metric::SiteId c : centers) {
      center_points.push_back(euclidean->point(c));
    }
    UKC_ASSIGN_OR_RETURN(geometry::KdTree tree,
                         geometry::KdTree::Build(std::move(center_points)));
    return ExpectedMaxOfIndependent(BuildDistributions(
        dataset, [&](size_t, metric::SiteId site) {
          return std::sqrt(
              tree.Nearest(euclidean->point(site)).squared_distance);
        }));
  }
  return ExpectedMaxOfIndependent(BuildDistributions(
      dataset, [&](size_t, metric::SiteId site) {
        return space.DistanceToSet(site, centers);
      }));
}

namespace {

// Shared recursion for the exponential reference implementations.
template <typename DistanceOfLocation>
Result<double> BruteForceCost(const uncertain::UncertainDataset& dataset,
                              DistanceOfLocation distance,
                              const BruteForceCostOptions& options) {
  // Count realizations with saturation.
  uint64_t realizations = 1;
  for (size_t i = 0; i < dataset.n(); ++i) {
    const uint64_t z = dataset.point(i).num_locations();
    if (realizations > options.max_realizations / z) {
      return Status::InvalidArgument(
          StrFormat("BruteForceCost: more than %llu realizations",
                    static_cast<unsigned long long>(options.max_realizations)));
    }
    realizations *= z;
  }

  KahanSum expectation;
  std::vector<size_t> choice(dataset.n(), 0);
  while (true) {
    double probability = 1.0;
    double worst = 0.0;
    for (size_t i = 0; i < dataset.n(); ++i) {
      const uncertain::Location& loc = dataset.point(i).location(choice[i]);
      probability *= loc.probability;
      worst = std::max(worst, distance(i, loc.site));
    }
    expectation.Add(probability * worst);
    // Odometer increment.
    size_t i = 0;
    for (; i < dataset.n(); ++i) {
      if (++choice[i] < dataset.point(i).num_locations()) break;
      choice[i] = 0;
    }
    if (i == dataset.n()) break;
  }
  return expectation.Total();
}

}  // namespace

Result<double> BruteForceAssignedCost(const uncertain::UncertainDataset& dataset,
                                      const Assignment& assignment,
                                      const BruteForceCostOptions& options) {
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument("BruteForceAssignedCost: size mismatch");
  }
  const metric::MetricSpace& space = dataset.space();
  return BruteForceCost(
      dataset,
      [&](size_t i, metric::SiteId site) {
        return space.Distance(site, assignment[i]);
      },
      options);
}

Result<double> BruteForceUnassignedCost(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers,
    const BruteForceCostOptions& options) {
  if (centers.empty()) {
    return Status::InvalidArgument("BruteForceUnassignedCost: no centers");
  }
  const metric::MetricSpace& space = dataset.space();
  return BruteForceCost(
      dataset,
      [&](size_t, metric::SiteId site) {
        return space.DistanceToSet(site, centers);
      },
      options);
}

namespace {

template <typename DistanceOfLocation>
Result<MonteCarloEstimate> MonteCarloCost(
    const uncertain::UncertainDataset& dataset, DistanceOfLocation distance,
    int64_t samples, Rng& rng) {
  if (samples <= 0) {
    return Status::InvalidArgument("MonteCarloCost: samples must be positive");
  }
  uncertain::RealizationSampler sampler(dataset);
  uncertain::Realization realization;
  RunningStats stats;
  for (int64_t s = 0; s < samples; ++s) {
    sampler.SampleInto(rng, &realization);
    double worst = 0.0;
    for (size_t i = 0; i < dataset.n(); ++i) {
      const metric::SiteId site = dataset.point(i).site(realization[i]);
      worst = std::max(worst, distance(i, site));
    }
    stats.Add(worst);
  }
  MonteCarloEstimate estimate;
  estimate.mean = stats.Mean();
  estimate.std_error = stats.StdError();
  estimate.samples = samples;
  return estimate;
}

}  // namespace

Result<MonteCarloEstimate> MonteCarloAssignedCost(
    const uncertain::UncertainDataset& dataset, const Assignment& assignment,
    int64_t samples, Rng& rng) {
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument("MonteCarloAssignedCost: size mismatch");
  }
  const metric::MetricSpace& space = dataset.space();
  return MonteCarloCost(
      dataset,
      [&](size_t i, metric::SiteId site) {
        return space.Distance(site, assignment[i]);
      },
      samples, rng);
}

Result<MonteCarloEstimate> MonteCarloUnassignedCost(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers, int64_t samples, Rng& rng) {
  if (centers.empty()) {
    return Status::InvalidArgument("MonteCarloUnassignedCost: no centers");
  }
  const metric::MetricSpace& space = dataset.space();
  return MonteCarloCost(
      dataset,
      [&](size_t, metric::SiteId site) {
        return space.DistanceToSet(site, centers);
      },
      samples, rng);
}

}  // namespace cost
}  // namespace ukc
