#include "cost/expected_cost.h"

#include <algorithm>
#include <cmath>

#include "common/stats.h"
#include "common/strings.h"

namespace ukc {
namespace cost {

namespace {

// The scratch behind the free functions. Thread-local so concurrent
// callers never share mutable state; per-thread reuse keeps repeated
// one-off calls (benches, local search loops that predate the evaluator)
// allocation-free after warm-up.
ExpectedCostEvaluator& ThreadLocalEvaluator() {
  static thread_local ExpectedCostEvaluator evaluator;
  return evaluator;
}

}  // namespace

double ExpectedMaxOfIndependent(
    const std::vector<DiscreteDistribution>& distributions) {
  return ThreadLocalEvaluator().ExpectedMaxOfIndependent(distributions);
}

Result<double> ExactAssignedCost(const uncertain::UncertainDataset& dataset,
                                 const Assignment& assignment) {
  return ThreadLocalEvaluator().AssignedCost(dataset, assignment);
}

Result<double> ExactUnassignedCost(const uncertain::UncertainDataset& dataset,
                                   const std::vector<metric::SiteId>& centers,
                                   const ExactCostOptions& options) {
  ExpectedCostEvaluator& evaluator = ThreadLocalEvaluator();
  ExpectedCostEvaluator::Options evaluator_options = evaluator.options();
  evaluator_options.kdtree_cutover = options.kdtree_cutover;
  evaluator.set_options(evaluator_options);
  return evaluator.UnassignedCost(dataset, centers);
}

Result<MonteCarloEstimate> MonteCarloAssignedCost(
    const uncertain::UncertainDataset& dataset, const Assignment& assignment,
    int64_t samples, Rng& rng) {
  return ThreadLocalEvaluator().MonteCarloAssignedCost(dataset, assignment,
                                                       samples, rng);
}

Result<MonteCarloEstimate> MonteCarloUnassignedCost(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers, int64_t samples, Rng& rng) {
  return ThreadLocalEvaluator().MonteCarloUnassignedCost(dataset, centers,
                                                         samples, rng);
}

namespace {

// Shared recursion for the exponential reference implementations.
template <typename DistanceOfLocation>
Result<double> BruteForceCost(const uncertain::UncertainDataset& dataset,
                              DistanceOfLocation distance,
                              const BruteForceCostOptions& options) {
  // Count realizations with saturation.
  uint64_t realizations = 1;
  for (size_t i = 0; i < dataset.n(); ++i) {
    const uint64_t z = dataset.point(i).num_locations();
    if (realizations > options.max_realizations / z) {
      return Status::InvalidArgument(
          StrFormat("BruteForceCost: more than %llu realizations",
                    static_cast<unsigned long long>(options.max_realizations)));
    }
    realizations *= z;
  }

  KahanSum expectation;
  std::vector<size_t> choice(dataset.n(), 0);
  while (true) {
    double probability = 1.0;
    double worst = 0.0;
    for (size_t i = 0; i < dataset.n(); ++i) {
      const uncertain::Location& loc = dataset.point(i).location(choice[i]);
      probability *= loc.probability;
      worst = std::max(worst, distance(i, loc.site));
    }
    expectation.Add(probability * worst);
    // Odometer increment.
    size_t i = 0;
    for (; i < dataset.n(); ++i) {
      if (++choice[i] < dataset.point(i).num_locations()) break;
      choice[i] = 0;
    }
    if (i == dataset.n()) break;
  }
  return expectation.Total();
}

}  // namespace

Result<double> BruteForceAssignedCost(const uncertain::UncertainDataset& dataset,
                                      const Assignment& assignment,
                                      const BruteForceCostOptions& options) {
  if (assignment.size() != dataset.n()) {
    return Status::InvalidArgument("BruteForceAssignedCost: size mismatch");
  }
  const metric::MetricSpace& space = dataset.space();
  return BruteForceCost(
      dataset,
      [&](size_t i, metric::SiteId site) {
        return space.Distance(site, assignment[i]);
      },
      options);
}

Result<double> BruteForceUnassignedCost(
    const uncertain::UncertainDataset& dataset,
    const std::vector<metric::SiteId>& centers,
    const BruteForceCostOptions& options) {
  if (centers.empty()) {
    return Status::InvalidArgument("BruteForceUnassignedCost: no centers");
  }
  const metric::MetricSpace& space = dataset.space();
  return BruteForceCost(
      dataset,
      [&](size_t, metric::SiteId site) {
        return space.DistanceToSet(site, centers);
      },
      options);
}

}  // namespace cost
}  // namespace ukc
