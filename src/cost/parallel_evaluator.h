// ParallelCandidateEvaluator: shards "evaluate the expected cost of
// many candidate solutions" over a persistent worker pool.
//
// ExpectedCostEvaluator is mutable scratch and must not be shared
// across threads; this class owns one evaluator per worker plus a
// common::ThreadPool and fans candidate center sets (or assignments, or
// local-search swaps) out across them. Results are written by candidate
// index into a preallocated buffer, so the output order — and, because
// each candidate's evaluation is arithmetically identical no matter
// which worker runs it, every output bit — is independent of the thread
// count and of scheduling. threads = 1 degenerates to an inline serial
// loop.
//
// The swap API is the local-search fast path: evaluating the k·|pool|
// one-center swaps of a round naively costs O(k·|pool|·N·k); with the
// per-position "distance to the other k-1 centers" tables built here it
// is O(k·N·k + k·|pool|·N) — each swapped set costs one kernel distance
// per location instead of k. min() is exact in floating point, so the
// swap values are bitwise identical to full linear-path evaluations.
//
// On top of that, SwapCostMatrix is an *incremental engine* across
// local-search rounds (Euclidean datasets):
//   - Rollover: local search replaces one center per round, so of the k
//     per-center distance rows only the replaced one is recomputed; the
//     per-position base tables (prefix/suffix mins, presorted event
//     streams, sweep snapshots) are rebuilt only where the new row
//     actually changed them bitwise — the swapped position's own table
//     (which excludes the replaced center) always survives. Validity is
//     enforced, not assumed: the cached tables are keyed by a
//     fingerprint of the dataset's location data plus the exact center
//     coordinates, and every table carries an epoch that is CHECKed at
//     consultation time, so a stale table is a crash, never a wrong
//     answer.
//   - kd-pruned candidate scans: a BoundedKdTree over the *locations*
//     with per-position subtree bounds of the base distances lets each
//     candidate visit only the ~m locations it can possibly improve,
//     instead of all N (ExpectedCostEvaluator::UnassignedCostSwapPruned).
// Both paths are bitwise identical to the full rebuild + full O(N)
// scan, which remain available via Options as the reference path
// (asserted by tests/incremental_sweep_test.cc across thread counts,
// dimensions, and multi-round trajectories).

#ifndef UKC_COST_PARALLEL_EVALUATOR_H_
#define UKC_COST_PARALLEL_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "cost/expected_cost_evaluator.h"
#include "geometry/bounded_kdtree.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace cost {

/// Scores batches of candidate solutions in parallel with deterministic
/// (thread-count independent) results. See file comment.
class ParallelCandidateEvaluator {
 public:
  struct Options {
    /// Worker count; <= 0 means ThreadPool::HardwareThreads().
    int threads = 0;
    /// Borrowed shared worker pool; when set, `threads` is ignored and
    /// no private pool is constructed (see ScopedPool). The evaluator
    /// sizes one worker evaluator per pool thread.
    ThreadPool* pool = nullptr;
    /// Per-worker evaluator configuration. monte_carlo_threads is
    /// forced to 1 and sweep_pool is forced null for the workers (a
    /// pool must not be re-entered from inside its own jobs); the
    /// separate MAIN evaluator — used for batches too small to shard
    /// and for single-stale-table swap rounds — gets sweep_pool wired
    /// to this evaluator's pool, so those calls parallelize INSIDE the
    /// sweep instead (bitwise identical either way).
    ExpectedCostEvaluator::Options evaluator;
    /// Roll SwapCostMatrix base tables across calls when the dataset is
    /// unchanged and at most one center differs (bitwise identical to a
    /// full rebuild; Euclidean datasets only). Off = the reference
    /// full-rebuild path.
    bool incremental_rollover = true;
    /// Prune each swap candidate's distance pass with the location
    /// kd-tree (bitwise identical to the full O(N) scan; Euclidean
    /// datasets only). Off = the reference full-scan path.
    bool kd_prune = true;
  };

  /// Default options: hardware thread count, default evaluator config.
  ParallelCandidateEvaluator();
  explicit ParallelCandidateEvaluator(Options options);

  int threads() const { return pool_->num_threads(); }

  /// Exact unassigned cost of every center set; values[s] corresponds
  /// to center_sets[s].
  Result<std::vector<double>> UnassignedCostBatch(
      const uncertain::UncertainDataset& dataset,
      const std::vector<std::vector<metric::SiteId>>& center_sets);

  /// Exact assigned cost of every assignment; values[a] corresponds to
  /// assignments[a].
  Result<std::vector<double>> AssignedCostBatch(
      const uncertain::UncertainDataset& dataset,
      const std::vector<Assignment>& assignments);

  /// Monte-Carlo unassigned estimates, one per center set. Candidate s
  /// draws from rng.Fork(s) (forked serially up front), so the
  /// estimates depend only on the seed — not on the thread count.
  Result<std::vector<MonteCarloEstimate>> MonteCarloUnassignedCostBatch(
      const uncertain::UncertainDataset& dataset,
      const std::vector<std::vector<metric::SiteId>>& center_sets,
      int64_t samples, Rng& rng);

  /// Exact unassigned cost of every one-center swap of `centers`:
  /// values[p * pool.size() + c] is the cost of centers with
  /// centers[p] replaced by pool[c]. Per position the base distances
  /// ("all centers but p") are built and presorted once; each candidate
  /// then costs O(N + m log m) via the merge-sweep
  /// (ExpectedCostEvaluator::UnassignedCostSwapPresorted) instead of a
  /// fresh O(N log N) evaluation. Values agree with a full linear-path
  /// evaluation of the swapped set to rounding (identical value order;
  /// tied events may apply in a different order) and are bitwise
  /// identical across thread counts. Scratch is O(k · total_locations).
  Result<std::vector<double>> SwapCostMatrix(
      const uncertain::UncertainDataset& dataset,
      const std::vector<metric::SiteId>& centers,
      const std::vector<metric::SiteId>& pool);

  /// Churn: rolls the cached SwapCostMatrix state across a SINGLE-POINT
  /// dataset edit instead of letting the fingerprint miss force a full
  /// rebuild. Call AFTER mutating the dataset (UncertainDataset::
  /// AppendPoint / RemovePoint) with `edit` describing the change
  /// (expected_cost_evaluator.h DatasetEdit). The k distance rows are
  /// compacted or extended in place (kernel work only for the inserted
  /// locations, against the CACHED center coordinates), the per-position
  /// base tables get the matching sparse edit, and each presorted
  /// stream is rewritten by ExpectedCostEvaluator::EditSwapBase — all
  /// bitwise identical to a from-scratch rebuild on the post-edit
  /// instance, which is what makes the next SwapCostMatrix call's
  /// bitwise diff classify every table as rolled over. The post-edit
  /// content fingerprint is stamped at the end, so a dataset that was
  /// edited in any OTHER way still misses the cache and rebuilds.
  ///
  /// No-op without published cached state (nothing to roll); on any
  /// validation or edit failure the cached state is poisoned — never
  /// left half-edited as apparently valid — and the next call rebuilds.
  /// The location kd-tree is always dropped (its shape depends on the
  /// location set); it rebuilds on the next call.
  Status ApplyDatasetEdit(const uncertain::UncertainDataset& dataset,
                          const DatasetEdit& edit);

  /// Observability for the compacted snapshot ladder: SwapLadderBytes
  /// is the resident snapshot-CDF bytes across the cached swap-base
  /// tables (the storage the compaction shrinks); SwapBaseMemoryBytes
  /// adds the event streams and escalation side tables on top. The
  /// escalation/replay counters aggregate over every owned evaluator.
  size_t SwapLadderBytes() const;
  size_t SwapBaseMemoryBytes() const;
  uint64_t LadderEscalations() const;
  uint64_t LadderReplayedEvents() const;

  /// Generic sharding hook: runs fn(evaluator, task) for every task in
  /// [0, count) over the worker pool, handing each invocation the
  /// calling worker's private ExpectedCostEvaluator. Statuses are
  /// collected per task and the first error in *task order* is
  /// returned, so error reporting is thread-count independent. fn must
  /// make each task a pure function of its index (write results by
  /// index, reduce afterwards in fixed order) — this is how
  /// core::ExactUnassignedTiny shards subset enumeration itself via
  /// ranked unranking instead of feeding a serially enumerated batch.
  Status ForEachTask(size_t count,
                     const std::function<Status(ExpectedCostEvaluator&, size_t)>& fn);

 private:
  // True when a small batch should run serially on the main evaluator
  // with the segmented sweep fanning out inside each candidate: the
  // engine must be enabled, the pool real, and the dataset's streams
  // at least the engine cutover (else the serial loop would forfeit
  // the workers for nothing).
  bool SweepsInsideCandidates(const uncertain::UncertainDataset& dataset) const;

  // Runs fn(worker, index) over [0, count) on the pool, collecting one
  // Status per index; returns the first error in index order.
  template <typename Fn>
  Status RunTasks(size_t count, const Fn& fn);

  Options options_;
  ScopedPool pool_;  // Owns a private pool unless Options::pool is set.
  // One per worker; vector never reallocates after construction (the
  // evaluator is pinned by its atomic owner mark).
  std::vector<ExpectedCostEvaluator> evaluators_;
  // The top-level evaluator whose segmented sweeps fan out over pool_
  // (see Options::evaluator). Only ever run from the calling thread,
  // never from inside a pool job.
  ExpectedCostEvaluator main_evaluator_;
  // Last ReserveScratch sizing handed to the evaluators (dataset
  // header: points, total locations); re-issued only when it grows.
  size_t reserved_points_ = 0;
  size_t reserved_locations_ = 0;

  // SwapCostMatrix scratch, reused across rounds: per-center distance
  // rows, the per-position "all centers but p" base tables, their
  // presorted event streams, and the location → point map.
  std::vector<double> center_distances_;  // k rows of total_locations.
  std::vector<double> suffix_min_;        // Rolling suffix mins.
  std::vector<double> base_without_;      // k rows of total_locations.
  std::vector<ExpectedCostEvaluator::SwapBase> swap_bases_;
  std::vector<uint32_t> point_of_;        // Location → owning point.

  // Incremental-rollover state. The cached rows/tables describe the
  // instance identified by swap_fingerprint_ (a content hash of the
  // dataset's location data — NOT the dataset's address, which a
  // rebuilt dataset could reuse) evaluated at cached_centers_ with the
  // exact coordinates in cached_center_coords_; anything that fails to
  // match is rebuilt. swap_epoch_ advances every SwapCostMatrix call
  // and every table's epoch must equal it at consultation (CHECK).
  uint64_t swap_epoch_ = 0;
  std::optional<uint64_t> swap_fingerprint_;
  std::vector<metric::SiteId> cached_centers_;
  std::vector<double> cached_center_coords_;  // k rows of dim.
  std::vector<double> base_prev_;             // Last round's base_without_.
  bool base_prev_valid_ = false;

  // kd-pruned scan state: the location tree (rebuilt only when the
  // fingerprint changes) and per-position subtree maxima of the base
  // distances (k rows of total_locations slots, refreshed with the
  // corresponding swap base).
  std::optional<geometry::BoundedKdTree> location_tree_;
  std::vector<double> node_base_max_;
};

}  // namespace cost
}  // namespace ukc

#endif  // UKC_COST_PARALLEL_EVALUATOR_H_
