// ParallelCandidateEvaluator: shards "evaluate the expected cost of
// many candidate solutions" over a persistent worker pool.
//
// ExpectedCostEvaluator is mutable scratch and must not be shared
// across threads; this class owns one evaluator per worker plus a
// common::ThreadPool and fans candidate center sets (or assignments, or
// local-search swaps) out across them. Results are written by candidate
// index into a preallocated buffer, so the output order — and, because
// each candidate's evaluation is arithmetically identical no matter
// which worker runs it, every output bit — is independent of the thread
// count and of scheduling. threads = 1 degenerates to an inline serial
// loop.
//
// The swap API is the local-search fast path: evaluating the k·|pool|
// one-center swaps of a round naively costs O(k·|pool|·N·k); with the
// per-position "distance to the other k-1 centers" tables built here it
// is O(k·N·k + k·|pool|·N) — each swapped set costs one kernel distance
// per location instead of k. min() is exact in floating point, so the
// swap values are bitwise identical to full linear-path evaluations.

#ifndef UKC_COST_PARALLEL_EVALUATOR_H_
#define UKC_COST_PARALLEL_EVALUATOR_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "cost/expected_cost_evaluator.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace cost {

/// Scores batches of candidate solutions in parallel with deterministic
/// (thread-count independent) results. See file comment.
class ParallelCandidateEvaluator {
 public:
  struct Options {
    /// Worker count; <= 0 means ThreadPool::HardwareThreads().
    int threads = 0;
    /// Borrowed shared worker pool; when set, `threads` is ignored and
    /// no private pool is constructed (see ScopedPool). The evaluator
    /// sizes one worker evaluator per pool thread.
    ThreadPool* pool = nullptr;
    /// Per-worker evaluator configuration. monte_carlo_threads is
    /// forced to 1 — the pool is the only fan-out level.
    ExpectedCostEvaluator::Options evaluator;
  };

  /// Default options: hardware thread count, default evaluator config.
  ParallelCandidateEvaluator();
  explicit ParallelCandidateEvaluator(Options options);

  int threads() const { return pool_->num_threads(); }

  /// Exact unassigned cost of every center set; values[s] corresponds
  /// to center_sets[s].
  Result<std::vector<double>> UnassignedCostBatch(
      const uncertain::UncertainDataset& dataset,
      const std::vector<std::vector<metric::SiteId>>& center_sets);

  /// Exact assigned cost of every assignment; values[a] corresponds to
  /// assignments[a].
  Result<std::vector<double>> AssignedCostBatch(
      const uncertain::UncertainDataset& dataset,
      const std::vector<Assignment>& assignments);

  /// Monte-Carlo unassigned estimates, one per center set. Candidate s
  /// draws from rng.Fork(s) (forked serially up front), so the
  /// estimates depend only on the seed — not on the thread count.
  Result<std::vector<MonteCarloEstimate>> MonteCarloUnassignedCostBatch(
      const uncertain::UncertainDataset& dataset,
      const std::vector<std::vector<metric::SiteId>>& center_sets,
      int64_t samples, Rng& rng);

  /// Exact unassigned cost of every one-center swap of `centers`:
  /// values[p * pool.size() + c] is the cost of centers with
  /// centers[p] replaced by pool[c]. Per position the base distances
  /// ("all centers but p") are built and presorted once; each candidate
  /// then costs O(N + m log m) via the merge-sweep
  /// (ExpectedCostEvaluator::UnassignedCostSwapPresorted) instead of a
  /// fresh O(N log N) evaluation. Values agree with a full linear-path
  /// evaluation of the swapped set to rounding (identical value order;
  /// tied events may apply in a different order) and are bitwise
  /// identical across thread counts. Scratch is O(k · total_locations).
  Result<std::vector<double>> SwapCostMatrix(
      const uncertain::UncertainDataset& dataset,
      const std::vector<metric::SiteId>& centers,
      const std::vector<metric::SiteId>& pool);

 private:
  // Runs fn(worker, index) over [0, count) on the pool, collecting one
  // Status per index; returns the first error in index order.
  template <typename Fn>
  Status RunTasks(size_t count, const Fn& fn);

  Options options_;
  ScopedPool pool_;  // Owns a private pool unless Options::pool is set.
  // One per worker; vector never reallocates after construction (the
  // evaluator is pinned by its atomic owner mark).
  std::vector<ExpectedCostEvaluator> evaluators_;

  // SwapCostMatrix scratch, reused across rounds: per-center distance
  // rows, the per-position "all centers but p" base tables, their
  // presorted event streams, and the location → point map.
  std::vector<double> center_distances_;  // k rows of total_locations.
  std::vector<double> suffix_min_;        // Rolling suffix mins.
  std::vector<double> base_without_;      // k rows of total_locations.
  std::vector<ExpectedCostEvaluator::SwapBase> swap_bases_;
  std::vector<uint32_t> point_of_;        // Location → owning point.
};

}  // namespace cost
}  // namespace ukc

#endif  // UKC_COST_PARALLEL_EVALUATOR_H_
