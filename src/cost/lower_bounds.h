// Instance-level lower bounds on the optimal unrestricted assigned
// expected cost. These give the ratio denominators on instances too
// large for the exact tiny-instance optimum.

#ifndef UKC_COST_LOWER_BOUNDS_H_
#define UKC_COST_LOWER_BOUNDS_H_

#include "common/result.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace cost {

/// The per-point (Lemma 3.2) bound:
///
///   OPT >= max_i  min_{c in X}  E[d(P̂_i, c)]
///
/// because for any centers and assignment, EcostA >= Σ_j prob(P̂_i)
/// d(P̂_i, A(P_i)) >= min_c E[d(P̂_i, c)]. In Euclidean spaces the inner
/// minimum over all of R^d is the weighted geometric-median objective
/// (computed by Weiszfeld); in finite metrics it is a minimum over all
/// sites.
Result<double> PerPointLowerBound(const uncertain::UncertainDataset& dataset);

/// The same bound for a single point i (min over the whole space of the
/// expected distance). Exposed for the surrogate tests.
Result<double> PointExpectedDistanceFloor(const uncertain::UncertainDataset& dataset,
                                          size_t i);

}  // namespace cost
}  // namespace ukc

#endif  // UKC_COST_LOWER_BOUNDS_H_
