// ExpectedCostEvaluator: the reusable engine behind every expected-cost
// evaluation (the paper's EcostA / Ecost objectives).
//
// The objectives reduce to E[max_i X_i] over independent discrete
// variables, computed exactly in O(N log N) by sweeping the value axis
// (see expected_cost.h for the math). Evaluating one candidate solution
// is cheap; pipelines evaluate thousands (local search tries every
// center swap, benches score whole families), and the naive free
// functions used to pay for that with fresh allocations per call:
// per-point distribution vectors, the event buffer, the per-variable CDF
// array, and a kd-tree rebuilt from boxed points on every unassigned
// call.
//
// The evaluator owns all of that state and amortizes it across calls:
//   - one flat event buffer (value, variable, probability) reused by
//     every evaluation — distances are written straight into it from the
//     EuclideanSpace coordinate arena, no intermediate distributions;
//   - the per-variable CDF array for the sweep;
//   - a kd-tree over the current center set, cached and only rebuilt
//     when the centers actually change;
//   - the per-location distance table + alias samplers for Monte-Carlo
//     estimation, with optional thread fan-out over samples.
//
// Worked example — scoring many candidate center sets:
//
//   cost::ExpectedCostEvaluator evaluator;           // reusable scratch
//   for (const auto& centers : candidate_center_sets) {
//     UKC_ASSIGN_OR_RETURN(double value,
//                          evaluator.UnassignedCost(dataset, centers));
//     if (value < best) { best = value; best_centers = centers; }
//   }
//   // ... or in one call, sharing scratch across the whole batch:
//   UKC_ASSIGN_OR_RETURN(std::vector<double> values,
//                        evaluator.UnassignedCostBatch(dataset,
//                                                      candidate_center_sets));
//
// The evaluator is cheap to construct but only pays off when reused; the
// free functions in expected_cost.h delegate to a thread-local instance,
// so one-off callers get the fast path too. An evaluator must not be
// shared across threads concurrently (it is mutable scratch); create one
// per thread instead.

#ifndef UKC_COST_EXPECTED_COST_EVALUATOR_H_
#define UKC_COST_EXPECTED_COST_EVALUATOR_H_

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "cost/assignment.h"
#include "geometry/kdtree.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace cost {

/// One random variable's support: (value, probability) pairs. Values
/// need not be sorted or distinct; probabilities must be positive and
/// sum to 1 per variable.
using DiscreteDistribution = std::vector<std::pair<double, double>>;

/// Center-set size at which the unassigned-cost evaluation switches
/// from the linear center scan to a kd-tree over the centers (L2 only).
/// Picked from bench/micro_bench.cc BM_UnassignedCostLinear /
/// BM_UnassignedCostKdTree on the 2-d clustered family (n = 4000): the
/// flat linear scan (contiguous gathered block, unrolled kernel) wins
/// through k = 32 (1.79 ms vs 2.02 ms), the tree wins from k = 48
/// (2.27 ms vs 2.40 ms) and pulls away after; the crossover sits near
/// k = 40.
inline constexpr size_t kDefaultKdTreeCutover = 40;

/// Options bounding the exact evaluations (BruteForceCostOptions-style).
struct ExactCostOptions {
  /// Centers >= this use the kd-tree path (Euclidean L2 spaces only).
  size_t kdtree_cutover = kDefaultKdTreeCutover;
};

/// A Monte-Carlo estimate with its standard error.
struct MonteCarloEstimate {
  double mean = 0.0;
  double std_error = 0.0;
  int64_t samples = 0;
};

/// Reusable exact/Monte-Carlo expected-cost engine. See file comment.
class ExpectedCostEvaluator {
 public:
  struct Options {
    /// Centers >= this use the kd-tree path (Euclidean L2 spaces only).
    size_t kdtree_cutover = kDefaultKdTreeCutover;
    /// Threads fanning out over Monte-Carlo samples; 1 = sequential
    /// (and bit-identical to the historical estimator).
    int monte_carlo_threads = 1;
  };

  ExpectedCostEvaluator() = default;
  explicit ExpectedCostEvaluator(Options options) : options_(options) {}

  const Options& options() const { return options_; }
  void set_options(Options options) { options_ = options; }

  /// Exact assigned expected cost EcostA for the given assignment
  /// (assignment[i] = serving center site of point i).
  Result<double> AssignedCost(const uncertain::UncertainDataset& dataset,
                              const Assignment& assignment);

  /// Exact unassigned expected cost Ecost for the given centers.
  Result<double> UnassignedCost(const uncertain::UncertainDataset& dataset,
                                const std::vector<metric::SiteId>& centers);

  /// Scores many candidate center sets, sharing all scratch (and the
  /// kd-tree cache, for repeated sets) across the batch.
  Result<std::vector<double>> UnassignedCostBatch(
      const uncertain::UncertainDataset& dataset,
      const std::vector<std::vector<metric::SiteId>>& center_sets);

  /// Exact E[max_i X_i] for independent discrete X_i. O(N log N) in the
  /// total support size N. Reuses the evaluator's event/CDF scratch.
  double ExpectedMaxOfIndependent(
      std::span<const DiscreteDistribution> distributions);

  /// Monte-Carlo estimators (alias-table sampling over a precomputed
  /// per-location distance table; optional thread fan-out per Options).
  Result<MonteCarloEstimate> MonteCarloAssignedCost(
      const uncertain::UncertainDataset& dataset, const Assignment& assignment,
      int64_t samples, Rng& rng);
  Result<MonteCarloEstimate> MonteCarloUnassignedCost(
      const uncertain::UncertainDataset& dataset,
      const std::vector<metric::SiteId>& centers, int64_t samples, Rng& rng);

 private:
  // An atom of probability mass: variable `index` takes `value` with
  // probability `probability`.
  struct Event {
    double value;
    uint32_t index;
    double probability;
  };

  // Validates centers and fills events_ with one (distance, point,
  // probability) atom per location.
  Status FillUnassignedEvents(const uncertain::UncertainDataset& dataset,
                              const std::vector<metric::SiteId>& centers);

  // Sorts events_ ascending by value: LSD radix over the
  // order-preserving bit transform of the key for large inputs (the
  // sweep's former std::sort bottleneck), std::sort below the cutover.
  void SortEventsByValue();

  // Sorts events_ and runs the value-axis sweep for `num_variables`
  // variables (resets cdf_).
  double SweepEvents(size_t num_variables);

  // Fills distance_table_/offsets_ with d(location, target) for every
  // location. `distance(i, site)` gives the distance for point i's
  // location at `site`.
  template <typename DistanceOfLocation>
  void FillDistanceTable(const uncertain::UncertainDataset& dataset,
                         DistanceOfLocation distance);

  // Runs the Monte-Carlo loop over the filled distance table.
  Result<MonteCarloEstimate> MonteCarloOverTable(
      const uncertain::UncertainDataset& dataset, int64_t samples, Rng& rng);

  Options options_;

  // Exact-sweep scratch.
  std::vector<Event> events_;
  std::vector<Event> events_scratch_;   // Radix-sort ping-pong buffer.
  std::vector<uint32_t> radix_counts_;  // Radix-sort histograms.
  std::vector<double> cdf_;

  // Gathered center coordinates for flat linear scans.
  std::vector<double> center_coords_;

  // kd-tree cache, keyed by the gathered center *coordinates* (content,
  // not identity: a space pointer + site ids could alias a destroyed
  // dataset's, but equal coordinates always build the same tree).
  std::vector<double> tree_coords_;
  size_t tree_dim_ = 0;
  std::optional<geometry::KdTree> tree_;

  // Monte-Carlo scratch: distance_table_[offsets_[i] + j] = distance of
  // point i's j-th location to its target (assigned center / center set).
  std::vector<double> distance_table_;
  std::vector<size_t> offsets_;
};

}  // namespace cost
}  // namespace ukc

#endif  // UKC_COST_EXPECTED_COST_EVALUATOR_H_
