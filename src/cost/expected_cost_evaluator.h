// ExpectedCostEvaluator: the reusable engine behind every expected-cost
// evaluation (the paper's EcostA / Ecost objectives).
//
// The objectives reduce to E[max_i X_i] over independent discrete
// variables, computed exactly in O(N log N) by sweeping the value axis
// (see expected_cost.h for the math). Evaluating one candidate solution
// is cheap; pipelines evaluate thousands (local search tries every
// center swap, benches score whole families), and the naive free
// functions used to pay for that with fresh allocations per call:
// per-point distribution vectors, the event buffer, the per-variable CDF
// array, and a kd-tree rebuilt from boxed points on every unassigned
// call.
//
// The evaluator owns all of that state and amortizes it across calls:
//   - one flat event buffer (value, variable, probability) reused by
//     every evaluation — distances are written straight into it by
//     streaming the dataset's flat site/probability arrays against the
//     EuclideanSpace coordinate arena, no per-location indirection;
//   - the per-variable CDF array for the sweep;
//   - a kd-tree over the current center set, cached and only rebuilt
//     when the centers actually change;
//   - the per-location distance table + alias samplers for Monte-Carlo
//     estimation, with optional thread fan-out over samples.
//
// Worked example — scoring many candidate center sets:
//
//   cost::ExpectedCostEvaluator evaluator;           // reusable scratch
//   for (const auto& centers : candidate_center_sets) {
//     UKC_ASSIGN_OR_RETURN(double value,
//                          evaluator.UnassignedCost(dataset, centers));
//     if (value < best) { best = value; best_centers = centers; }
//   }
//   // ... or in one call, sharing scratch across the whole batch:
//   UKC_ASSIGN_OR_RETURN(std::vector<double> values,
//                        evaluator.UnassignedCostBatch(dataset,
//                                                      candidate_center_sets));
//
// The evaluator is cheap to construct but only pays off when reused; the
// free functions in expected_cost.h delegate to a thread-local instance,
// so one-off callers get the fast path too. An evaluator must not be
// shared across threads concurrently (it is mutable scratch); create one
// per thread instead — cost::ParallelCandidateEvaluator does exactly
// that to shard big batches over a worker pool. The contract is
// enforced: every public evaluation entry point checks (via an atomic
// owner mark) that no second thread is inside the same instance and
// aborts with a CHECK failure on violation.

#ifndef UKC_COST_EXPECTED_COST_EVALUATOR_H_
#define UKC_COST_EXPECTED_COST_EVALUATOR_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "cost/assignment.h"
#include "geometry/bounded_kdtree.h"
#include "geometry/kdtree.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace cost {

/// One random variable's support: (value, probability) pairs. Values
/// need not be sorted or distinct; probabilities must be positive and
/// sum to 1 per variable.
using DiscreteDistribution = std::vector<std::pair<double, double>>;

/// Center-set size at which the unassigned-cost evaluation switches
/// from the linear center scan to a kd-tree over the centers (L2 only).
/// Picked from bench/micro_bench.cc BM_UnassignedCostLinear /
/// BM_UnassignedCostKdTree on the 2-d clustered family (n = 4000): the
/// flat linear scan (contiguous gathered block, unrolled kernel) wins
/// through k = 32 (1.79 ms vs 2.02 ms), the tree wins from k = 48
/// (2.27 ms vs 2.40 ms) and pulls away after; the crossover sits near
/// k = 40.
inline constexpr size_t kDefaultKdTreeCutover = 40;

/// Options bounding the exact evaluations (BruteForceCostOptions-style).
struct ExactCostOptions {
  /// Centers >= this use the kd-tree path (Euclidean L2 spaces only).
  size_t kdtree_cutover = kDefaultKdTreeCutover;
};

/// A Monte-Carlo estimate with its standard error.
struct MonteCarloEstimate {
  double mean = 0.0;
  double std_error = 0.0;
  int64_t samples = 0;
};

/// One dataset mutation, as consumed by the incremental swap-table
/// edit paths (ExpectedCostEvaluator::EditSwapBase,
/// ParallelCandidateEvaluator::ApplyDatasetEdit). Two shapes only:
/// append of one point at the END of the instance (is_insert; indices
/// and the location range are POST-edit — the new point is n-1 and its
/// locations are the flat tail), or compacting removal of one point
/// (indices and range are PRE-edit; later points shift down by one and
/// the flat arrays close the gap, values unchanged).
struct DatasetEdit {
  bool is_insert = false;
  /// The appended point's post-edit index (n-1) or the removed point's
  /// pre-edit index.
  uint32_t point = 0;
  /// The point's flat location range [begin, end).
  size_t location_begin = 0;
  size_t location_end = 0;
};

/// Reusable exact/Monte-Carlo expected-cost engine. See file comment.
class ExpectedCostEvaluator {
 public:
  /// An atom of probability mass: variable `index` takes `value` with
  /// probability `probability`. `location` carries the flat location id
  /// for the swap path (0 where unused). Public because
  /// ParallelCandidateEvaluator shares presorted event streams.
  struct Event {
    double value;
    uint32_t index;
    uint32_t location;
    double probability;
  };

  struct Options {
    /// Centers >= this use the kd-tree path (Euclidean L2 spaces only).
    size_t kdtree_cutover = kDefaultKdTreeCutover;
    /// Threads fanning out over Monte-Carlo samples; 1 = sequential
    /// (and bit-identical to the historical estimator).
    int monte_carlo_threads = 1;
    /// Use the segmented exact-sweep engine (parallel radix sort +
    /// per-variable CDF trajectories + ordered serial combine) for
    /// sweeps of at least parallel_sweep_cutover events when sweep_pool
    /// offers real parallelism. The engine is bitwise identical to the
    /// serial scan at every thread count — false keeps the plain
    /// serial sort-sweep as the reference path.
    bool parallel_sweep = true;
    /// Event count below which the serial sweep is used even when
    /// parallel_sweep is on (the segmented engine's extra passes only
    /// pay off on large streams). Tests set 1 to force the engine.
    size_t parallel_sweep_cutover = 32768;
    /// Borrowed pool fanning out the segmented engine's phases. Null —
    /// or a 1-thread pool — keeps the serial sweep: the engine trades
    /// extra memory passes for parallel phases, so without real
    /// parallelism the serial scan is the faster identical-result
    /// path (measured in BM_ExactSweep{Serial,Parallel}). Callers
    /// running the evaluator from inside a pool job must leave this
    /// null (a pool must not be re-entered from one of its own jobs).
    ThreadPool* sweep_pool = nullptr;
    /// Cancellation/budget token checked once per evaluation entry
    /// (per candidate on batch and swap paths — coarse on purpose, so
    /// the unexpired cost is one relaxed atomic load per candidate).
    /// The default token never expires. On expiry the evaluation
    /// returns kDeadlineExceeded; the evaluator's scratch is reusable
    /// by construction (every evaluation rewrites it from scratch), so
    /// no cleanup beyond returning is needed.
    Deadline deadline;
    /// Store only rung 0 and the deepest rung's per-point CDF in
    /// SwapBase (the ~3.5x ladder memory compaction); an escalation
    /// that lands on an intermediate rung re-derives its CDF once per
    /// candidate by replaying events[deepest.index, rung.index) —
    /// bitwise identical to the stored rung. false keeps all
    /// kSwapLadderRungs CDFs resident (the reference ladder).
    bool compact_swap_ladder = true;
  };

  ExpectedCostEvaluator() = default;
  explicit ExpectedCostEvaluator(Options options) : options_(options) {}

  const Options& options() const { return options_; }
  void set_options(Options options) { options_ = options; }

  /// Exact assigned expected cost EcostA for the given assignment
  /// (assignment[i] = serving center site of point i).
  Result<double> AssignedCost(const uncertain::UncertainDataset& dataset,
                              const Assignment& assignment);

  /// Exact unassigned expected cost Ecost for the given centers.
  Result<double> UnassignedCost(const uncertain::UncertainDataset& dataset,
                                const std::vector<metric::SiteId>& centers);

  /// Scores many candidate center sets, sharing all scratch (and the
  /// kd-tree cache, for repeated sets) across the batch.
  Result<std::vector<double>> UnassignedCostBatch(
      const uncertain::UncertainDataset& dataset,
      const std::vector<std::vector<metric::SiteId>>& center_sets);

  /// Pre-reserves every sweep/swap scratch buffer for a dataset with
  /// `n` points and `total_locations` locations (the dataset header),
  /// so repeated batch calls — SwapCostMatrix rounds in particular —
  /// never reallocate mid-trajectory. Also arms the no-shrink
  /// contract: once reserved, every subsequent swap-base build CHECKs
  /// that the scratch capacity has not dropped below the reservation.
  void ReserveScratch(size_t n, size_t total_locations);

  /// The armed reservation (events), 0 when ReserveScratch was never
  /// called.
  size_t reserved_scratch() const { return scratch_reservation_; }

  /// Ladder-compaction observability: how many swap evaluations
  /// escalated past rung 0, and how many base events were replayed to
  /// re-derive compacted intermediate rung CDFs. Monotone counters,
  /// reset by ResetSwapCounters.
  uint64_t ladder_escalations() const { return ladder_escalations_; }
  uint64_t ladder_replayed_events() const { return ladder_replayed_events_; }
  void ResetSwapCounters() {
    ladder_escalations_ = 0;
    ladder_replayed_events_ = 0;
  }

  /// Precomputed read-only tables for the presorted swap path: the base
  /// event stream sorted by (value, location), plus a LADDER of sweep
  /// snapshots. A snapshot at threshold T is a valid merge start for a
  /// candidate as long as no mass can be emitted below T in the swapped
  /// configuration — i.e. as long as some point's first CDF-positive
  /// value stays >= T. Relative to such a snapshot, an improved
  /// location with both its old and new distance below T merely moves
  /// CDF mass the snapshot already accounts for, so a candidate only
  /// replays (a) its improvements of locations with base distance >= T
  /// and (b) the base event tail above T.
  ///
  /// The ladder's rung 0 sits at the second-largest per-point minimum
  /// base distance (valid unless a candidate improves every flagged
  /// bottleneck point — the common case, with a tiny ~O(m) replay); the
  /// deeper rungs descend through upper quantiles of the per-point
  /// minima down to the median. A candidate that kills rung 0 (it
  /// covers the current bottleneck region — exactly the improving swaps
  /// local search hunts) escalates: one gated re-collection computes
  /// each deep point's improved service, lower-bounding the new
  /// emission start, and the highest still-valid rung scores it with a
  /// partial replay. Only a candidate that improves essentially half
  /// the points below the median rung pays the full merge.
  static constexpr size_t kSwapLadderRungs = 7;

  struct SwapBase {
    /// One rung: the sweep state just below `threshold`. Under
    /// Options::compact_swap_ladder only rung 0 and the deepest rung
    /// keep their `cdf` resident; an intermediate rung's CDF is
    /// re-derived on demand from the deepest rung by replaying
    /// events[deepest.index, index) — the product state (zeros,
    /// mantissa, exponent) stays stored, it is O(1).
    struct Snapshot {
      double threshold = 0.0;
      size_t index = 0;  // First event with value >= threshold.
      size_t zeros = 0;
      double mantissa = 1.0;
      int exponent = 0;
      std::vector<double> cdf;  // Per-point CDF of events < threshold.
    };

    std::vector<Event> events;  // Sorted by (value, location).
    /// Rungs in decreasing threshold order: [0] the second-largest
    /// per-point min, then descending quantiles of the per-point
    /// minima, ending at the median.
    Snapshot levels[kSwapLadderRungs];
    std::vector<uint8_t> bottleneck;  // Point's min base >= levels[0].
    size_t bottleneck_count = 0;      // Number of flagged points.
    /// Points whose min base distance >= the deepest rung's threshold
    /// (the escalation pass re-derives their service from these), with
    /// the minima themselves parallel in deep_first.
    std::vector<uint32_t> deep_points;
    std::vector<double> deep_first;
    /// Collection gate of the fast path == levels[0].threshold.
    double threshold = 0.0;
    /// Round stamp managed by the owner (ParallelCandidateEvaluator's
    /// incremental rollover): a table may only be consulted when its
    /// epoch equals the owner's current round epoch — the CHECK that
    /// makes a stale rolled-over table a crash instead of a wrong
    /// answer.
    uint64_t epoch = 0;
    /// Process-unique id stamped by every (re)build — the derived-rung
    /// cache keys on it, so a rebuilt table at a reused address can
    /// never serve a stale derivation, including through the direct
    /// BuildSwapBase/score API where epoch stays 0.
    uint64_t build_id = 0;

    /// Resident bytes of the snapshot CDFs — exactly the storage
    /// Options::compact_swap_ladder cuts 7n -> 2n doubles (~3.5x).
    /// The event stream and the escalation side tables (bottleneck
    /// flags, deep points), which both ladder variants hold
    /// identically, are accounted in
    /// ParallelCandidateEvaluator::SwapBaseMemoryBytes.
    size_t LadderBytes() const;
  };

  /// Builds the presorted base tables for UnassignedCostSwapPresorted
  /// from base_distances[l] (distance of flat location l to the
  /// unchanged centers) and point_of[l]. Uses this evaluator's radix
  /// scratch; the result is shareable read-only across threads.
  Status BuildSwapBase(const uncertain::UncertainDataset& dataset,
                       std::span<const double> base_distances,
                       std::span<const uint32_t> point_of, SwapBase* out);

  /// Rebuilds `out` — previously built against old_base — for new_base
  /// by PATCHING the sorted stream: entries of locations whose base
  /// value changed are dropped in one compaction pass and re-merged at
  /// their new values, then the ladder snapshots are re-swept. Bitwise
  /// identical to BuildSwapBase(new_base, ...) (the stream is re-formed
  /// in the exact (value, location) order the full sort produces) at
  /// O(N + changed·log changed) instead of a fresh radix sort — the
  /// incremental-rollover path for the k−1 base tables a one-center
  /// swap perturbs.
  Status PatchSwapBase(const uncertain::UncertainDataset& dataset,
                       std::span<const double> old_base,
                       std::span<const double> new_base,
                       std::span<const uint32_t> point_of, SwapBase* out);

  /// Rebuilds `out` — previously built for the PRE-edit instance —
  /// for the post-edit `dataset` after a single-point insert or
  /// delete, by EDITING the sorted stream instead of re-sorting:
  ///   - delete: one compaction pass drops the removed point's events
  ///     and renumbers the retained index/location fields. The
  ///     renumbering is strictly monotone on retained locations and
  ///     values are untouched, so the (value, location) order is
  ///     preserved without a sort.
  ///   - insert (append-at-end): the new point's events are sorted
  ///     among themselves and merged in; their location ids and point
  ///     index exceed every existing one, so the merge reproduces the
  ///     full sort's tie order exactly.
  /// Then the ladder is re-swept (FinishSwapBase), making the result
  /// BITWISE identical to BuildSwapBase on the post-edit instance at
  /// O(N + z log z) instead of a fresh radix sort. `new_base` and
  /// `point_of` are the POST-edit tables; the caller guarantees the
  /// retained entries' base values are unchanged by the edit.
  Status EditSwapBase(const uncertain::UncertainDataset& dataset,
                      std::span<const double> new_base,
                      std::span<const uint32_t> point_of,
                      const DatasetEdit& edit, SwapBase* out);

  /// Exact unassigned cost of a one-center swap — location l's distance
  /// to the swapped set is min(base_distances[l], d(l, extra)) — scored
  /// against tables built once by BuildSwapBase and shared across many
  /// candidates. A candidate's events below the threshold merely shift
  /// CDF mass that the snapshot already accounts for, so the call costs
  /// one kernel distance per location plus a replay of the tail —
  /// unless the candidate improves a bottleneck point below the
  /// threshold (rare), which falls back to a full merge-sweep. Agrees
  /// with a full evaluation of the swapped center set to rounding
  /// (~1 ulp per event: identical value-axis order; only
  /// tied/below-threshold events may apply in a different order); the
  /// result is a pure function of the inputs, so it is identical no
  /// matter which thread or evaluator runs it.
  Result<double> UnassignedCostSwapPresorted(
      const uncertain::UncertainDataset& dataset,
      std::span<const double> base_distances, const SwapBase& base,
      std::span<const uint32_t> point_of, metric::SiteId extra);

  /// UnassignedCostSwapPresorted with the candidate's O(N) distance
  /// pass replaced by a pruned walk of `tree` (a BoundedKdTree over the
  /// flat *locations*, in flat order): `subtree_max[slot]` must hold
  /// the subtree maximum of base_distances (FillSubtreeMax), so a
  /// subtree whose bounding box is farther from the candidate than its
  /// maximum base distance is skipped whole — only the ~m locations the
  /// candidate can possibly improve are visited. Every visited location
  /// is re-tested with the exact same kernel + comparison as the full
  /// scan and the collected set is re-sorted into the scan's location
  /// order, so the result is BITWISE identical to
  /// UnassignedCostSwapPresorted (the pruning predicate carries a
  /// 1e-9 relative slack that dwarfs the bounding-box arithmetic's
  /// ~1e-15 rounding, so no qualifying location can ever be pruned).
  /// Euclidean datasets only.
  Result<double> UnassignedCostSwapPruned(
      const uncertain::UncertainDataset& dataset,
      std::span<const double> base_distances, const SwapBase& base,
      std::span<const uint32_t> point_of, metric::SiteId extra,
      const geometry::BoundedKdTree& tree, std::span<const double> subtree_max);

  /// Exact E[max_i X_i] for independent discrete X_i. O(N log N) in the
  /// total support size N. Reuses the evaluator's event/CDF scratch.
  double ExpectedMaxOfIndependent(
      std::span<const DiscreteDistribution> distributions);

  /// Monte-Carlo estimators (alias-table sampling over a precomputed
  /// per-location distance table; optional thread fan-out per Options).
  Result<MonteCarloEstimate> MonteCarloAssignedCost(
      const uncertain::UncertainDataset& dataset, const Assignment& assignment,
      int64_t samples, Rng& rng);
  Result<MonteCarloEstimate> MonteCarloUnassignedCost(
      const uncertain::UncertainDataset& dataset,
      const std::vector<metric::SiteId>& centers, int64_t samples, Rng& rng);

 private:
  // RAII enforcement of the one-thread-at-a-time contract: marks the
  // evaluator owned by the calling thread for the duration of a public
  // evaluation, CHECK-failing if another thread already holds it.
  // Reentrant from the owning thread (batch entry points call the
  // single-set ones).
  class ScratchGuard {
   public:
    explicit ScratchGuard(ExpectedCostEvaluator* evaluator);
    ~ScratchGuard();

   private:
    ExpectedCostEvaluator* evaluator_;
  };

  // Validates centers and fills events_ with one (distance, point,
  // probability) atom per location.
  Status FillUnassignedEvents(const uncertain::UncertainDataset& dataset,
                              const std::vector<metric::SiteId>& centers);

  // Sorts events_ ascending by (value, location): LSD radix over the
  // order-preserving bit transform of the key for large inputs (the
  // sweep's former std::sort bottleneck), std::sort below the cutover.
  // Every event fill writes ascending locations, so the stable radix
  // and the tie-spelled std::sort produce the same permutation.
  void SortEventsByValue();

  // The segmented engine's sort: stable LSD radix by value, sharded
  // over `pool` (per-worker histograms over contiguous event shards,
  // one exact serial prefix over the combined histograms, per-worker
  // scatters into precomputed disjoint destination ranges). Bitwise
  // identical to the serial radix — and to SortEventsByValue — at
  // every thread count. With track_positions, perm_[e] is left holding
  // the pre-sort position of sorted event e.
  void RadixSortEventsByValue(ThreadPool* pool, bool track_positions);

  // The pool the segmented engine may fan out over: the configured
  // sweep_pool when it offers real parallelism, else null (the serial
  // path wins at one thread — see Options::sweep_pool).
  ThreadPool* SweepPool() const {
    return options_.sweep_pool != nullptr &&
                   options_.sweep_pool->num_threads() > 1
               ? options_.sweep_pool
               : nullptr;
  }

  // True when the current options route a sweep of `count` events
  // through the segmented engine.
  bool UseSegmentedSweep(size_t count) const {
    return options_.parallel_sweep && SweepPool() != nullptr &&
           count >= options_.parallel_sweep_cutover;
  }

  // The no-shrink tripwire armed by ReserveScratch: a swap-base build
  // whose scratch capacity dropped below the reservation means
  // something deallocated mid-trajectory — crash, don't churn.
  void CheckScratchReservation() const;

  // Sorts events_ and runs the value-axis sweep for `num_variables`
  // variables (resets cdf_ on the serial path). var_offsets delimits
  // each variable's pre-sort event range (the CSR offsets array for
  // dataset sweeps); an empty span forces the serial path.
  double SweepEvents(size_t num_variables,
                     std::span<const size_t> var_offsets = {});

  // The segmented sweep: after the (tracked) parallel sort, the
  // per-variable CDF trajectories are computed in parallel over
  // variable segments — each event's CDF step becomes a precomputed
  // product ratio — and one ordered serial combine replays exactly the
  // serial scan's multiply/renormalize/emit sequence. Bitwise
  // identical to the serial SweepEvents at every thread count.
  double SweepEventsSegmented(size_t num_variables,
                              std::span<const size_t> var_offsets);

  // Resets changed_ and advances the stamp masks for a new candidate's
  // collection pass.
  void BeginChangedCollection(const uncertain::UncertainDataset& dataset);

  // The shared back half of BuildSwapBase/PatchSwapBase: derives the
  // rung thresholds, bottleneck flags, and ladder snapshots from
  // base_distances and the already-sorted out->events.
  void FinishSwapBase(const uncertain::UncertainDataset& dataset,
                      std::span<const double> base_distances,
                      SwapBase* out);

  // Fills changed_ with EVERY improved location (d < base, no
  // threshold gate) — the collection the full-merge fallback needs.
  // Shared by the full-scan and kd-pruned entry points so a fallback is
  // bitwise identical no matter which path detected it.
  void CollectAllImproved(const uncertain::UncertainDataset& dataset,
                          std::span<const double> base_distances,
                          metric::SiteId extra);

  // The escalation pass after level 0 is invalidated: one gated
  // re-collection at the deepest rung's threshold, a lower bound on the
  // candidate's new emission start from the deep points' improved
  // service, and the highest still-valid rung as the scoring level —
  // or nullptr when only the full merge remains (in which case
  // changed_ is re-collected in full). Shared verbatim by the
  // full-scan and kd-pruned entry points.
  const SwapBase::Snapshot* EscalateAndCollect(
      const uncertain::UncertainDataset& dataset, const SwapBase& base,
      std::span<const uint32_t> point_of,
      std::span<const double> base_distances, metric::SiteId extra);

  // Scores a swap from the collected changed_ set (the shared tail of
  // the full-scan and kd-pruned collection paths): the replay against
  // ladder rung `level`, or — when level is nullptr — the full
  // merge-from-scratch over the complete improved set. changed_ must
  // be in ascending location order and stamped into changed_stamp_.
  Result<double> ScoreSwapFromChanged(const uncertain::UncertainDataset& dataset,
                                      const SwapBase& base,
                                      std::span<const uint32_t> point_of,
                                      std::span<const double> base_distances,
                                      const SwapBase::Snapshot* level);

  // Merge-sweeps base.events[a_begin..) (entries stamped in
  // changed_stamp_ skipped) against `changed` (ascending (value, l)),
  // starting from the given sweep state. cdf_ must already hold the
  // matching per-point CDFs.
  double MergeSweepFrom(const uncertain::UncertainDataset& dataset,
                        const SwapBase& base, size_t a_begin,
                        std::span<const std::pair<double, uint32_t>> changed,
                        std::span<const uint32_t> point_of, size_t zeros,
                        double mantissa, int exponent);

  // Fills distance_table_ with distance(site) for every flat location,
  // in flat-array order (one shared target set; per-point targets are
  // filled inline by MonteCarloAssignedCost instead).
  template <typename DistanceOfLocation>
  void FillDistanceTable(const uncertain::UncertainDataset& dataset,
                         DistanceOfLocation distance);

  // Runs the Monte-Carlo loop over the filled distance table.
  Result<MonteCarloEstimate> MonteCarloOverTable(
      const uncertain::UncertainDataset& dataset, int64_t samples, Rng& rng);

  Options options_;

  // Concurrent-reuse detection (see ScratchGuard). The owner id is the
  // thread currently evaluating; depth_ counts its nested entries.
  std::atomic<std::thread::id> owner_{std::thread::id()};
  int owner_depth_ = 0;

  // Exact-sweep scratch.
  std::vector<Event> events_;
  std::vector<Event> events_scratch_;   // Radix-sort ping-pong buffer.
  std::vector<uint32_t> radix_counts_;  // Radix-sort histograms.
  std::vector<double> cdf_;

  // Segmented-engine scratch: the position permutation tracked through
  // the parallel radix (perm_: sorted -> pre-sort, inv_: pre-sort ->
  // sorted), the per-event precomputed product ratios / zero flags,
  // per-shard radix histograms, and the per-variable offsets built for
  // non-CSR fills (ExpectedMaxOfIndependent).
  std::vector<uint32_t> perm_;
  std::vector<uint32_t> perm_scratch_;
  std::vector<uint32_t> inv_;
  std::vector<double> ratio_;
  std::vector<uint8_t> ratio_zero_;
  std::vector<uint32_t> shard_counts_;
  std::vector<size_t> var_offsets_scratch_;

  // Scratch reservation high-water (events); 0 = never reserved. Swap
  // base builds CHECK capacity never drops below it (no reallocation
  // churn mid-trajectory).
  size_t scratch_reservation_ = 0;
  size_t scratch_reservation_points_ = 0;

  // Ladder-compaction counters (see accessors).
  uint64_t ladder_escalations_ = 0;
  uint64_t ladder_replayed_events_ = 0;

  // Derived-rung cache for the compacted ladder: the last intermediate
  // CDF reconstructed from the deepest rung, keyed by (table build id,
  // rung). Candidates of one round that escalate to the same rung of
  // the same table pay the O(prefix) replay once per evaluator instead
  // of once per candidate. A stale key can never alias a live table:
  // SwapBase::build_id is process-unique per build, no matter which
  // evaluator rebuilt the table or whether the owner runs the epoch
  // scheme.
  std::vector<double> derived_cdf_;
  uint64_t derived_build_id_ = 0;
  int derived_level_ = -1;

  // Presorted-swap scratch: the candidate's improved locations, the
  // subset participating in the tail merge, and version-stamped
  // membership masks — per location, and per point for the
  // bottleneck-hit count (avoids an O(N) clear per call).
  std::vector<std::pair<double, uint32_t>> changed_;
  std::vector<std::pair<double, uint32_t>> changed_tail_;
  std::vector<uint32_t> changed_stamp_;
  std::vector<uint32_t> point_stamp_;
  std::vector<double> point_min_;  // Stamped per-point improved minimum.
  uint32_t stamp_ = 0;

  // FinishSwapBase scratch: per-point minima and their order-statistic
  // workspace (one stale table per position per round — no per-call
  // allocations).
  std::vector<double> swap_first_;
  std::vector<double> swap_order_;

  // Gathered center coordinates for flat linear scans.
  std::vector<double> center_coords_;

  // kd-tree cache, keyed by the gathered center *coordinates* (content,
  // not identity: a space pointer + site ids could alias a destroyed
  // dataset's, but equal coordinates always build the same tree).
  std::vector<double> tree_coords_;
  size_t tree_dim_ = 0;
  std::optional<geometry::KdTree> tree_;

  // Monte-Carlo scratch: distance_table_[l] = distance of flat location
  // l to its target (assigned center / center set); the dataset's
  // offsets array delimits the points.
  std::vector<double> distance_table_;
};

}  // namespace cost
}  // namespace ukc

#endif  // UKC_COST_EXPECTED_COST_EVALUATOR_H_
