// Assignment rules: which center serves each uncertain point.
//
// The paper's three restricted-assignment rules are implemented here:
//   ED — expected distance:  A(P_i) = argmin_c E[d(P̂_i, c)]
//   EP — expected point:     A(P_i) = argmin_c d(P̄_i, c)   (Euclidean)
//   OC — 1-center:           A(P_i) = argmin_c d(P̃_i, c)
// EP and OC are both "nearest center to a surrogate site", so they share
// AssignBySurrogate; the surrogate construction itself lives in core/.

#ifndef UKC_COST_ASSIGNMENT_H_
#define UKC_COST_ASSIGNMENT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "uncertain/dataset.h"

namespace ukc {

class ThreadPool;

namespace cost {

/// assignment[i] = the center site serving uncertain point i.
using Assignment = std::vector<metric::SiteId>;

/// The paper's assignment rules.
enum class AssignmentRule {
  kExpectedDistance,  // ED
  kExpectedPoint,     // EP (Euclidean only)
  kOneCenter,         // OC
};

/// Short stable name ("ED", "EP", "OC").
std::string AssignmentRuleToString(AssignmentRule rule);

/// ED rule: assigns each point to the center minimizing its expected
/// distance. O(n z k) distance evaluations; the per-point argmins are
/// independent and shard over `threads` workers (<= 0 = hardware
/// threads) with a thread-count-independent result. When `pool` is set
/// it is borrowed instead of constructing a private pool and `threads`
/// is ignored (see ScopedPool in common/thread_pool.h).
Result<Assignment> AssignExpectedDistance(const uncertain::UncertainDataset& dataset,
                                          const std::vector<metric::SiteId>& centers,
                                          int threads = 1,
                                          ThreadPool* pool = nullptr);

/// Surrogate rule (EP/OC): assigns point i to the center nearest to
/// surrogates[i]. surrogates must have one site per uncertain point.
Result<Assignment> AssignBySurrogate(const uncertain::UncertainDataset& dataset,
                                     const std::vector<metric::SiteId>& surrogates,
                                     const std::vector<metric::SiteId>& centers);

/// Validates that an assignment maps every point to one of `centers`.
Status ValidateAssignment(const uncertain::UncertainDataset& dataset,
                          const std::vector<metric::SiteId>& centers,
                          const Assignment& assignment);

}  // namespace cost
}  // namespace ukc

#endif  // UKC_COST_ASSIGNMENT_H_
