#include "cost/lower_bounds.h"

#include <algorithm>
#include <limits>

#include "solver/geometric_median.h"

namespace ukc {
namespace cost {

Result<double> PointExpectedDistanceFloor(
    const uncertain::UncertainDataset& dataset, size_t i) {
  if (i >= dataset.n()) {
    return Status::InvalidArgument("PointExpectedDistanceFloor: index out of range");
  }
  const uncertain::UncertainPointView p = dataset.point(i);
  const metric::EuclideanSpace* euclidean = dataset.euclidean();
  if (euclidean != nullptr) {
    // min over all of R^d: the weighted geometric median objective.
    std::vector<geometry::Point> locations;
    std::vector<double> weights;
    locations.reserve(p.num_locations());
    weights.reserve(p.num_locations());
    for (const uncertain::Location& loc : p.locations()) {
      locations.push_back(euclidean->point(loc.site));
      weights.push_back(loc.probability);
    }
    UKC_ASSIGN_OR_RETURN(
        solver::GeometricMedianResult median,
        solver::WeightedGeometricMedian(locations, weights));
    return median.objective;
  }
  // Finite metric: minimize over every site of the space.
  const metric::MetricSpace& space = dataset.space();
  double best = std::numeric_limits<double>::infinity();
  for (metric::SiteId c = 0; c < space.num_sites(); ++c) {
    best = std::min(best, p.ExpectedDistanceTo(space, c));
  }
  return best;
}

Result<double> PerPointLowerBound(const uncertain::UncertainDataset& dataset) {
  double bound = 0.0;
  for (size_t i = 0; i < dataset.n(); ++i) {
    UKC_ASSIGN_OR_RETURN(double floor, PointExpectedDistanceFloor(dataset, i));
    bound = std::max(bound, floor);
  }
  return bound;
}

}  // namespace cost
}  // namespace ukc
