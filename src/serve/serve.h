// Shared types of the resident multi-tenant serving core.
//
// The serve layer composes the streaming subsystem's pieces into a
// long-lived process: each tenant owns a live StreamingCoreset fed by
// appends, queries are answered from coreset state (never from raw
// data), and the PR-6 checkpoint sidecar doubles as the per-tenant
// failover snapshot. See src/serve/tenant.h and src/serve/registry.h
// for the two layers; docs/operations.md ("Serving") for the operator
// view.
//
// Design stance: the registry is a SYNCHRONOUS DETERMINISTIC state
// machine. Appends enqueue into bounded per-tenant FIFO queues and are
// applied by Drain() in a fixed order (tenants by id, FIFO within a
// tenant); queries execute immediately against current coreset state,
// fanning out only through the one shared pool. Thread count therefore
// affects intra-query parallelism but never the sequence of state
// transitions — which is what makes replica answers bitwise
// comparable, and what lets the chaos suite replay any trajectory
// exactly. External synchronization (one serving thread) is the
// caller's contract, same as every evaluator in this repo.

#ifndef UKC_SERVE_SERVE_H_
#define UKC_SERVE_SERVE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "metric/euclidean_space.h"
#include "stream/coreset.h"

namespace ukc {
namespace serve {

/// Lifecycle state of a tenant. Transitions:
///   kLive -> kDegraded   watchdog: >= threshold consecutive failures
///   kDegraded -> kLive   watchdog recovery probe succeeded
///   any -> kLive         explicit RestoreFromSnapshot succeeded
enum class TenantState {
  /// Healthy: appends apply to the live coreset, queries answer from it.
  kLive,
  /// Failing boundary detected by the watchdog: writes are REFUSED
  /// (kFailedPrecondition — deliberately not retryable), queries are
  /// served from the last stable snapshot and flagged `stale`.
  kDegraded,
};

std::string_view TenantStateToString(TenantState state);

/// Static configuration of one tenant stream. Hashed into the
/// snapshot's config_fingerprint: a snapshot written under one
/// configuration never restores another.
struct TenantConfig {
  /// Ambient dimension of the tenant's points.
  size_t dim = 2;
  metric::Norm norm = metric::Norm::kL2;
  /// Centers served by QueryCenters (clamped to the live cell count).
  size_t k = 4;
  /// Coreset knobs (cell budget, base width).
  stream::CoresetOptions coreset;
  /// Failover sidecar path; empty disables snapshots (and failover).
  std::string snapshot_path;
  /// Take a snapshot every N acked appends (registry-driven cadence;
  /// 0 disables cadenced snapshots, explicit Snapshot() still works).
  uint64_t snapshot_every_appends = 16;
  /// fsync snapshot writes (off in tests, on in production).
  bool snapshot_sync = false;
  /// Sliding window: 0 = unbounded (the default); W > 0 retires old
  /// points so at most W + churn_bucket - 1 stream indices stay live.
  /// Expiry runs PER ACKED POINT inside Append (watermark
  /// next_index - W), which makes the (Add, Expire) sequence a pure
  /// function of the acked point sequence — replicas that ack the same
  /// points hold bitwise-identical coresets no matter how the stream
  /// was batched. Needs coreset.churn_bucket > 0; the tenant derives
  /// max(1, W / 16) when left at 0.
  uint64_t window_points = 0;
  /// Enable single-point deletes (SubmitDelete / Tenant::Delete). The
  /// tenant forces coreset.track_members (deletes must re-fold the
  /// non-invertible cell aggregates), which makes coreset memory
  /// O(live points) — size the window accordingly.
  bool allow_deletes = false;
};

/// Load-shed rejection: a bounded queue refused the newest work item.
/// The code is kUnavailable — transient by the global classification,
/// so naive clients may retry — but the serve layer's own ingest path
/// must NOT re-submit into the same full queue (retry amplification
/// under overload is how brownouts become blackouts), so sheds carry a
/// recognizable message marker and SubmitAppendWithRetry opts out via
/// RetryOptions::retry_if.
inline constexpr std::string_view kShedMessageMarker = "[load-shed]";

/// Builds the kUnavailable shed status with the marker.
Status ShedStatus(const std::string& detail);

/// True iff `status` is a load-shed rejection from this layer.
bool IsShed(const Status& status);

/// Counters of one registry (monotone; see docs/operations.md).
struct ServeStats {
  uint64_t appends_submitted = 0;   // SubmitAppend calls.
  uint64_t appends_shed = 0;        // Rejected: queue full.
  uint64_t enqueue_faults = 0;      // Rejected: serve.enqueue fault.
  uint64_t appends_refused = 0;     // Rejected: tenant degraded.
  uint64_t appends_applied = 0;     // Acked into a live coreset.
  uint64_t append_failures = 0;     // Tenant::Append errors in Drain.
  uint64_t snapshots_saved = 0;
  uint64_t snapshot_failures = 0;
  uint64_t degrade_events = 0;      // kLive -> kDegraded transitions.
  uint64_t recover_events = 0;      // kDegraded -> kLive transitions.
  uint64_t queries_answered = 0;
  uint64_t queries_deadline_exceeded = 0;
  uint64_t queries_failed = 0;      // Non-deadline query errors.
  uint64_t deletes_submitted = 0;   // SubmitDelete calls.
  uint64_t deletes_shed = 0;        // Rejected: queue full.
  uint64_t deletes_refused = 0;     // Rejected: degraded / not enabled.
  uint64_t deletes_applied = 0;     // Acked out of a live coreset.
  uint64_t delete_failures = 0;     // Tenant::Delete errors in Drain.
  uint64_t points_expired = 0;      // Points retired by window expiry.
};

}  // namespace serve
}  // namespace ukc

#endif  // UKC_SERVE_SERVE_H_
