// TenantRegistry: the resident serving core over N tenant streams.
//
// Responsibilities on top of serve/tenant.h:
//   - Admission control: SubmitAppend enqueues into a bounded
//     per-tenant FIFO queue; a full queue SHEDS the newest submission
//     with a marked kUnavailable (serve/serve.h ShedStatus) instead of
//     buffering unboundedly. SubmitAppendWithRetry shows the intended
//     client loop: bounded retry of genuinely transient failures that
//     explicitly opts out of retrying sheds (RetryOptions::retry_if) —
//     re-submitting into a full queue only amplifies the overload.
//   - Deterministic application: Drain() applies queued appends in a
//     fixed order — tenants by ascending id, FIFO within a tenant —
//     and drives the per-tenant snapshot cadence. Thread count never
//     changes the order, so every replica walks the same state
//     trajectory.
//   - Watchdog: consecutive append/snapshot failures degrade a tenant
//     (writes refused, queries served stale); each Drain opens with a
//     recovery probe (a snapshot attempt) for every degraded tenant,
//     so tenants heal themselves once the failing boundary clears.
//   - Failover: RestoreTenant rebuilds one tenant from its sidecar;
//     the caller replays acked appends past the restored epoch (the
//     registry reports it) to make the replica bitwise current.
//
// Externally synchronized (one serving thread); queries fan out over
// the registry's ScopedPool.

#ifndef UKC_SERVE_REGISTRY_H_
#define UKC_SERVE_REGISTRY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/retry.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/serve.h"
#include "serve/tenant.h"
#include "uncertain/chunk.h"

namespace ukc {
namespace serve {

/// Registry-wide knobs.
struct RegistryOptions {
  /// Bounded per-tenant append queue; a submission that would exceed
  /// it is shed (reject-newest). Must be >= 1.
  size_t queue_capacity = 64;
  /// Consecutive append/snapshot failures before the watchdog marks a
  /// tenant degraded. Must be >= 1.
  int degrade_after_failures = 3;
  /// Workers for query fan-out (<= 0 = hardware threads); ignored when
  /// `pool` borrows a shared pool (ScopedPool semantics).
  int threads = 1;
  ThreadPool* pool = nullptr;
  /// Observe query latency once every N queries per tenant (a
  /// deterministic counter; the first query is always measured). Every
  /// query is still COUNTED by outcome — sampling only amortizes the
  /// two TSC reads of the measurement, which would otherwise triple
  /// the ~40 ns cached-centers hit. 1 = measure every query (tests
  /// that assert on the latency series use this); 0 normalizes to 1.
  uint32_t latency_sample_every = 16;
  /// Registry the serving telemetry meters into (null = the
  /// process-wide obs::MetricsRegistry::Default()). Metrics mirror the
  /// ServeStats counters one-for-one — the chaos suite asserts the
  /// exported snapshot matches the observed event counts exactly — and
  /// add per-tenant query-latency histograms by query shape plus
  /// queue-depth gauges; see docs/operations.md ("Observability").
  obs::MetricsRegistry* metrics = nullptr;
};

/// Outcome of one Drain pass.
struct DrainResult {
  uint64_t applied = 0;    // Ops (appends + deletes) acked.
  uint64_t refused = 0;    // Dropped: tenant degraded at apply time.
  uint64_t failed = 0;     // Tenant op errors (fault-injectable).
  uint64_t snapshots = 0;  // Cadenced + probe snapshots taken.
  uint64_t degraded = 0;   // Tenants newly degraded this pass.
  uint64_t recovered = 0;  // Tenants newly recovered this pass.
  uint64_t expired = 0;    // Points retired by window expiry this pass.
};

class TenantRegistry {
 public:
  explicit TenantRegistry(RegistryOptions options);

  /// Registers a tenant. Fails on duplicate or empty id, or invalid
  /// config (dim 0).
  Result<Tenant*> CreateTenant(const std::string& id, TenantConfig config);

  /// The tenant, or nullptr when unknown.
  Tenant* FindTenant(const std::string& id);
  const Tenant* FindTenant(const std::string& id) const;

  /// Registered ids in ascending order (the Drain order).
  std::vector<std::string> TenantIds() const;

  /// Queued appends for one tenant (0 for unknown ids).
  size_t QueueDepth(const std::string& id) const;

  /// Admission control: copies `batch` into the tenant's queue.
  /// Rejections, in order of checking: unknown tenant (kNotFound),
  /// injected `serve.enqueue` fault (as injected), degraded tenant
  /// (kFailedPrecondition — not retryable by design), full queue
  /// (marked kUnavailable shed, see IsShed).
  Status SubmitAppend(const std::string& id,
                      const uncertain::UncertainPointBatch& batch);

  /// Enqueues a single-point delete (tenants with allow_deletes only).
  /// `point` replays the uncertain point that was acked at stream
  /// index `index` — Tenant::Delete verifies the replay bit-for-bit at
  /// apply time. Deletes share the tenant's bounded FIFO with appends,
  /// so Drain applies the interleaved op sequence in submission order
  /// on every replica — the replica-identity contract extends to
  /// churn. Rejections mirror SubmitAppend (kNotFound / degraded
  /// kFailedPrecondition / shed), plus kFailedPrecondition when the
  /// tenant does not allow deletes.
  Status SubmitDelete(const std::string& id, uint64_t index,
                      const uncertain::UncertainPointBatch& point);

  /// SubmitAppend under bounded retry with the serve-layer
  /// classification: transient failures (injected kUnavailable
  /// enqueue faults) retry on the RetryOptions schedule; SHEDS DO NOT
  /// — a full queue needs Drain, not more submissions. This is the
  /// RetryOptions::retry_if satellite in action.
  Status SubmitAppendWithRetry(const std::string& id,
                               const uncertain::UncertainPointBatch& batch,
                               const RetryOptions& retry,
                               RetryStats* retry_stats = nullptr);

  /// Applies every queued append in deterministic order and runs the
  /// watchdog: recovery probes for degraded tenants first, then the
  /// per-tenant FIFO, snapshot cadence after each ack, and
  /// degrade-on-threshold accounting. Always drains every queue (a
  /// refused append is dropped, not requeued).
  DrainResult Drain();

  /// Query pass-throughs: resolve the tenant, forward the shared pool
  /// and deadline, and keep the query counters.
  Result<Tenant::CentersAnswer> QueryCenters(const std::string& id,
                                             const Deadline& deadline);
  Result<Tenant::CostAnswer> QueryCandidateCost(
      const std::string& id, const std::vector<double>& candidates,
      size_t num_candidates, const Deadline& deadline);
  Result<Tenant::BracketAnswer> QueryBracket(
      const std::string& id, const std::vector<double>& candidates,
      size_t num_candidates, const Deadline& deadline);

  /// Failover: restores one tenant from its sidecar (fault site
  /// serve.restore) and reports the epoch it restored to via
  /// *restored_epoch (the caller replays acked appends past it). A
  /// successful restore clears the tenant's failure accounting; its
  /// queued (pre-kill) appends were never acked and the queue is
  /// cleared — the caller's replay is the source of truth.
  Status RestoreTenant(const std::string& id, uint64_t* restored_epoch);

  const ServeStats& stats() const { return stats_; }
  ThreadPool* pool() const { return pool_.get(); }

  /// The registry this instance meters into (the resolved
  /// RegistryOptions::metrics).
  obs::MetricsRegistry& metrics_registry() const { return *metrics_; }

 private:
  // Query shapes, indexing the per-tenant latency histograms.
  enum QueryShape { kCenters = 0, kCandidateCost = 1, kBracket = 2 };

  // One queued write op: an append batch, or a single-point delete
  // (is_delete; `batch` then holds the replayed point). One queue per
  // tenant keeps the append/delete interleaving in submission order.
  struct PendingOp {
    bool is_delete = false;
    uint64_t delete_index = 0;
    uncertain::UncertainPointBatch batch;
  };

  struct Slot {
    std::unique_ptr<Tenant> tenant;
    std::deque<PendingOp> queue;
    int consecutive_failures = 0;
    // Queries served, driving the deterministic 1-in-N latency
    // sampling (RegistryOptions::latency_sample_every).
    uint64_t queries_seen = 0;
    // Per-tenant telemetry handles (owned by the metrics registry).
    obs::Histogram* query_seconds[3] = {nullptr, nullptr, nullptr};
    obs::Gauge* queue_depth = nullptr;
  };

  // Registry-wide counter handles, mirroring ServeStats one-for-one.
  struct Metrics {
    obs::Counter* appends_submitted;
    obs::Counter* appends_shed;
    obs::Counter* enqueue_faults;
    obs::Counter* appends_refused;
    obs::Counter* appends_applied;
    obs::Counter* append_failures;
    obs::Counter* snapshots_saved;
    obs::Counter* snapshot_failures;
    obs::Counter* degrade_events;
    obs::Counter* recover_events;
    obs::Counter* failover_restores;
    obs::Counter* queries_answered;
    obs::Counter* queries_deadline_exceeded;
    obs::Counter* queries_failed;
    obs::Counter* deletes_submitted;
    obs::Counter* deletes_shed;
    obs::Counter* deletes_refused;
    obs::Counter* deletes_applied;
    obs::Counter* delete_failures;
    obs::Counter* points_expired;
  };

  // Watchdog bookkeeping after one fallible tenant operation.
  void RecordFailure(Slot* slot, DrainResult* result);
  void RecordSuccess(Slot* slot);

  // Whether this query should measure latency (advances the slot's
  // deterministic sampling counter).
  bool SampleQuery(Slot* slot);

  // Counter + latency upkeep shared by the three query pass-throughs:
  // counts the outcome always; observes `seconds` into the slot's
  // per-shape histogram only when the query was sampled.
  void CountQuery(Slot* slot, QueryShape shape, const Status& status,
                  bool sampled, double seconds);

  RegistryOptions options_;
  ScopedPool pool_;
  obs::MetricsRegistry* metrics_ = nullptr;
  Metrics metric_;
  std::map<std::string, Slot> tenants_;  // Ordered: the Drain order.
  ServeStats stats_;
};

}  // namespace serve
}  // namespace ukc

#endif  // UKC_SERVE_REGISTRY_H_
