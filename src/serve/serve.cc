#include "serve/serve.h"

namespace ukc {
namespace serve {

std::string_view TenantStateToString(TenantState state) {
  switch (state) {
    case TenantState::kLive:
      return "live";
    case TenantState::kDegraded:
      return "degraded";
  }
  return "unknown";
}

Status ShedStatus(const std::string& detail) {
  std::string message(kShedMessageMarker);
  message += " ";
  message += detail;
  return Status::Unavailable(std::move(message));
}

bool IsShed(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.message().find(kShedMessageMarker) != std::string::npos;
}

}  // namespace serve
}  // namespace ukc
