#include "serve/tenant.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <utility>

#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/strings.h"
#include "core/uncertain_kcenter.h"
#include "cost/assignment.h"
#include "metric/euclidean_space.h"
#include "stream/checkpoint.h"
#include "stream/ingest.h"
#include "uncertain/dataset.h"

namespace ukc {
namespace serve {

namespace {

// The coreset's own key-magnitude cap (stream/coreset.h): |x| / width
// must stay below 2^44. Checked per batch BEFORE any Add so an
// over-range coordinate rejects the whole batch atomically instead of
// failing mid-mutation.
constexpr double kKeyMagnitudeCap = 17592186044416.0;  // 2^44

// Folded into the content fingerprint before each acked delete, so an
// append and a delete can never alias to the same running hash.
constexpr uint64_t kDeleteOpTag = 0xD31E7E0Full;

}  // namespace

TenantConfig Tenant::NormalizeConfig(TenantConfig config) {
  if (config.allow_deletes) config.coreset.track_members = true;
  if ((config.window_points > 0 || config.allow_deletes) &&
      config.coreset.churn_bucket == 0) {
    // Default bucket: ~16 retirements per window sweep (window mode),
    // or a fixed modest granularity for delete-only tenants.
    config.coreset.churn_bucket =
        config.window_points > 0
            ? std::max<uint64_t>(1, config.window_points / 16)
            : 64;
  }
  return config;
}

Tenant::Tenant(std::string id, TenantConfig config)
    : id_(std::move(id)),
      config_(NormalizeConfig(std::move(config))),
      live_(config_.dim, config_.norm, config_.coreset),
      content_fingerprint_(kHashSeed),
      stable_(live_) {}

uint64_t Tenant::ConfigFingerprint() const {
  uint64_t hash = HashString(id_);
  hash = HashValue(hash, static_cast<uint64_t>(config_.dim));
  hash = HashValue(hash, static_cast<uint64_t>(config_.norm));
  hash = HashValue(hash, static_cast<uint64_t>(config_.k));
  hash = HashValue(hash, static_cast<uint64_t>(config_.coreset.max_cells));
  hash = HashBytes(hash, &config_.coreset.base_cell_width,
                   sizeof(config_.coreset.base_cell_width));
  // Churn settings change what the coreset retains — a windowed
  // snapshot must never restore into an unbounded tenant (or vice
  // versa), so they gate restore like every other config field.
  hash = HashValue(hash, config_.coreset.churn_bucket);
  hash = HashValue(hash,
                   static_cast<uint64_t>(config_.coreset.track_members));
  hash = HashValue(hash, config_.window_points);
  hash = HashValue(hash, static_cast<uint64_t>(config_.allow_deletes));
  return hash;
}

const stream::StreamingCoreset& Tenant::QuerySource(
    uint64_t* source_epoch) const {
  if (state_ == TenantState::kDegraded) {
    *source_epoch = stable_epoch_;
    return stable_;
  }
  *source_epoch = epoch_;
  return live_;
}

std::vector<stream::StreamingCoreset::Cell> Tenant::ExtractCells() const {
  uint64_t ignored = 0;
  return QuerySource(&ignored).ExtractCells();
}

Status Tenant::Append(const uncertain::UncertainPointBatch& batch) {
  if (state_ == TenantState::kDegraded) {
    return Status::FailedPrecondition(
        StrFormat("tenant %s is degraded: writes refused until recovery",
                  id_.c_str()));
  }
  // The injectable boundaries fire before ANY mutation: an injected
  // failure leaves coreset, cursor and fingerprint bitwise unchanged,
  // which is the all-or-nothing contract the chaos suite's reference
  // replay (acked appends only) depends on. stream.expire sits at the
  // same boundary — window expiry is part of the append unit, so a
  // faulted append must not leave "appended but not expired" state.
  UKC_INJECT_FAULT("serve.append");
  if (config_.window_points > 0) {
    UKC_INJECT_FAULT("stream.expire");
  }
  UKC_RETURN_IF_ERROR(stream::ValidateBatch(batch, config_.dim));
  if (batch.norm != config_.norm) {
    return Status::InvalidArgument(
        StrFormat("tenant %s: batch norm does not match the tenant norm",
                  id_.c_str()));
  }

  // Summarize and range-check the whole batch before the first Add.
  const size_t n = batch.n();
  expected_scratch_.resize(n * config_.dim);
  spread_scratch_.resize(n);
  const double magnitude_cap =
      config_.coreset.base_cell_width * kKeyMagnitudeCap;
  for (size_t i = 0; i < n; ++i) {
    double* expected = expected_scratch_.data() + i * config_.dim;
    spread_scratch_[i] = stream::SummarizeBatchPoint(batch, i, expected);
    for (size_t d = 0; d < config_.dim; ++d) {
      if (!(std::abs(expected[d]) < magnitude_cap)) {
        return Status::InvalidArgument(
            StrFormat("tenant %s: expected-point coordinate out of the "
                      "coreset key range (|x| must stay below "
                      "base_cell_width * 2^44)",
                      id_.c_str()));
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    UKC_RETURN_IF_ERROR(live_.Add(next_index_ + i,
                                  expected_scratch_.data() + i * config_.dim,
                                  spread_scratch_[i]));
    if (config_.window_points > 0) {
      // Per-POINT expiry: after acking point next_index_ + i the live
      // window is the last window_points indices. Running the watermark
      // here — not per batch — makes the (Add, Expire) interleaving a
      // pure function of the acked point sequence, so the coreset
      // (including its level history) is invariant to batch splits.
      const uint64_t acked_through = next_index_ + i + 1;
      if (acked_through > config_.window_points) {
        UKC_ASSIGN_OR_RETURN(
            const uint64_t retired,
            live_.ExpireBefore(acked_through - config_.window_points));
        expired_points_ += retired;
      }
    }
  }

  // Ack: advance the cursor and fold the batch into the content
  // fingerprint (cursor first, so identical batches at different
  // stream positions hash differently).
  content_fingerprint_ = HashValue(content_fingerprint_, next_index_);
  content_fingerprint_ = HashBytes(content_fingerprint_,
                                   batch.offsets.data(),
                                   batch.offsets.size() * sizeof(size_t));
  content_fingerprint_ = HashBytes(content_fingerprint_, batch.coords.data(),
                                   batch.coords.size() * sizeof(double));
  content_fingerprint_ = HashBytes(content_fingerprint_,
                                   batch.probabilities.data(),
                                   batch.probabilities.size() * sizeof(double));
  next_index_ += n;
  locations_ += batch.num_locations();
  ++epoch_;
  centers_cache_.reset();
  return Status::OK();
}

Status Tenant::Delete(uint64_t index,
                      const uncertain::UncertainPointBatch& point) {
  if (!config_.allow_deletes) {
    return Status::FailedPrecondition(
        StrFormat("tenant %s: deletes are not enabled "
                  "(TenantConfig::allow_deletes)",
                  id_.c_str()));
  }
  if (state_ == TenantState::kDegraded) {
    return Status::FailedPrecondition(
        StrFormat("tenant %s is degraded: writes refused until recovery",
                  id_.c_str()));
  }
  // Same all-or-nothing contract as Append: the fault site and every
  // validation failure precede the first mutation.
  UKC_INJECT_FAULT("serve.delete");
  UKC_RETURN_IF_ERROR(stream::ValidateBatch(point, config_.dim));
  if (point.norm != config_.norm) {
    return Status::InvalidArgument(
        StrFormat("tenant %s: delete norm does not match the tenant norm",
                  id_.c_str()));
  }
  if (point.n() != 1) {
    return Status::InvalidArgument(
        StrFormat("tenant %s: a delete replays exactly one point",
                  id_.c_str()));
  }
  if (index >= next_index_) {
    return Status::InvalidArgument(
        StrFormat("tenant %s: delete index %llu was never acked",
                  id_.c_str(), static_cast<unsigned long long>(index)));
  }
  expected_scratch_.resize(config_.dim);
  const double spread =
      stream::SummarizeBatchPoint(point, 0, expected_scratch_.data());
  // Remove validates that the replayed point matches the stored member
  // bit-for-bit; any mismatch (or an already-expired / already-deleted
  // index) errors out with the coreset untouched.
  UKC_RETURN_IF_ERROR(live_.Remove(index, expected_scratch_.data(), spread));

  // Ack: deletes advance the same epoch and fingerprint stream as
  // appends (with an op tag so the two can never alias), so replicas
  // that ack the same op sequence stay bitwise comparable.
  content_fingerprint_ = HashValue(content_fingerprint_, kDeleteOpTag);
  content_fingerprint_ = HashValue(content_fingerprint_, index);
  ++epoch_;
  centers_cache_.reset();
  return Status::OK();
}

Result<Tenant::CentersAnswer> Tenant::QueryCenters(ThreadPool* pool,
                                                   const Deadline& deadline) {
  UKC_RETURN_IF_ERROR(deadline.Check("QueryCenters"));
  uint64_t source_epoch = 0;
  const stream::StreamingCoreset& source = QuerySource(&source_epoch);
  const bool stale = state_ == TenantState::kDegraded;
  if (centers_cache_.has_value() && centers_cache_->epoch == source_epoch &&
      centers_cache_->stale == stale) {
    return *centers_cache_;
  }

  const std::vector<stream::StreamingCoreset::Cell> cells =
      source.ExtractCells();
  CentersAnswer answer;
  answer.epoch = source_epoch;
  answer.stale = stale;
  answer.k = std::min(config_.k, cells.size());
  if (!cells.empty()) {
    // Solve on the representative instance through the standard
    // pipeline, exactly as the streaming solver does
    // (stream/pipeline.cc): cells are certain points, weights do not
    // enter the max objective.
    auto space =
        std::make_shared<metric::EuclideanSpace>(config_.dim, config_.norm);
    std::vector<uncertain::UncertainPoint> points;
    points.reserve(cells.size());
    for (const stream::StreamingCoreset::Cell& cell : cells) {
      points.push_back(uncertain::UncertainPoint::Certain(
          space->AddCoords(cell.representative.data())));
    }
    UKC_ASSIGN_OR_RETURN(
        uncertain::UncertainDataset dataset,
        uncertain::UncertainDataset::Build(space, std::move(points)));
    core::UncertainKCenterOptions solve_options;
    solve_options.k = answer.k;
    solve_options.rule = cost::AssignmentRule::kExpectedDistance;
    solve_options.pool = pool;
    solve_options.deadline = deadline;
    UKC_ASSIGN_OR_RETURN(core::UncertainKCenterSolution solution,
                         core::SolveUncertainKCenter(&dataset, solve_options));
    answer.cost = solution.expected_cost;
    answer.center_coords.resize(answer.k * config_.dim);
    for (size_t c = 0; c < answer.k; ++c) {
      const double* coords = space->coords(solution.centers[c]);
      std::copy(coords, coords + config_.dim,
                answer.center_coords.data() + c * config_.dim);
    }
  }
  const double error = source.error_bound();
  answer.lower = std::max(0.0, answer.cost - error);
  answer.upper = answer.cost + error;
  centers_cache_ = answer;
  return answer;
}

Result<Tenant::CostAnswer> Tenant::QueryCandidateCost(
    const std::vector<double>& candidates, size_t num_candidates,
    const Deadline& deadline) {
  UKC_RETURN_IF_ERROR(deadline.Check("QueryCandidateCost"));
  if (num_candidates == 0 ||
      candidates.size() != num_candidates * config_.dim) {
    return Status::InvalidArgument(
        StrFormat("tenant %s: candidate buffer must hold num_candidates * "
                  "dim coordinates",
                  id_.c_str()));
  }
  uint64_t source_epoch = 0;
  const stream::StreamingCoreset& source = QuerySource(&source_epoch);
  CostAnswer answer;
  answer.epoch = source_epoch;
  answer.stale = state_ == TenantState::kDegraded;

  // max over cells of (min over candidates): fixed cell order (the
  // min_index sort of ExtractCells), fixed candidate order, strict
  // comparisons — bitwise identical on every replica and thread count.
  const std::vector<stream::StreamingCoreset::Cell> cells =
      source.ExtractCells();
  double cost = 0.0;
  for (size_t cell = 0; cell < cells.size(); ++cell) {
    if ((cell & 255u) == 0u) {
      UKC_RETURN_IF_ERROR(deadline.Check("QueryCandidateCost[scan]"));
    }
    const double* rep = cells[cell].representative.data();
    double nearest = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < num_candidates; ++c) {
      const double d = metric::NormDistanceKernel(
          config_.norm, rep, candidates.data() + c * config_.dim,
          config_.dim);
      if (d < nearest) nearest = d;
    }
    if (nearest > cost) cost = nearest;
  }
  answer.cost = cost;
  return answer;
}

Result<Tenant::BracketAnswer> Tenant::QueryBracket(
    const std::vector<double>& candidates, size_t num_candidates,
    const Deadline& deadline) {
  UKC_ASSIGN_OR_RETURN(CostAnswer cost,
                       QueryCandidateCost(candidates, num_candidates,
                                          deadline));
  uint64_t source_epoch = 0;
  const stream::StreamingCoreset& source = QuerySource(&source_epoch);
  BracketAnswer answer;
  answer.epoch = cost.epoch;
  answer.stale = cost.stale;
  answer.cost = cost.cost;
  // |E[d(P̂_i, C)] − d(rep_i, C)| <= diameter + spread_i for every
  // point (stream/coreset.h contract), so the full-data expected max
  // sits within error_bound of the representative max.
  answer.error_bound = source.error_bound();
  answer.lower = std::max(0.0, answer.cost - answer.error_bound);
  answer.upper = answer.cost + answer.error_bound;
  return answer;
}

Status Tenant::Snapshot() {
  if (config_.snapshot_path.empty()) {
    return Status::FailedPrecondition(
        StrFormat("tenant %s: no snapshot path configured", id_.c_str()));
  }
  UKC_INJECT_FAULT("serve.snapshot");
  stream::IngestCheckpoint checkpoint;
  checkpoint.config_fingerprint = ConfigFingerprint();
  checkpoint.content_fingerprint = content_fingerprint_;
  checkpoint.batches = epoch_;
  checkpoint.points = next_index_;
  checkpoint.locations = locations_;
  checkpoint.window_points = config_.window_points;
  checkpoint.expired_points = expired_points_;
  checkpoint.has_byte_offset = false;
  live_.SerializeTo(&checkpoint.coreset_image);
  UKC_RETURN_IF_ERROR(stream::SaveCheckpoint(config_.snapshot_path, checkpoint,
                                             config_.snapshot_sync));
  // The persisted image is the new stable serving source. (Snapshots
  // taken while degraded — the watchdog's recovery probe — refresh it
  // too: the live coreset is always valid, appends being atomic.)
  stable_ = live_;
  stable_epoch_ = epoch_;
  return Status::OK();
}

Status Tenant::RestoreFromSnapshot() {
  if (config_.snapshot_path.empty()) {
    return Status::FailedPrecondition(
        StrFormat("tenant %s: no snapshot path configured", id_.c_str()));
  }
  UKC_INJECT_FAULT("serve.restore");
  UKC_ASSIGN_OR_RETURN(stream::IngestCheckpoint checkpoint,
                       stream::LoadCheckpoint(config_.snapshot_path));
  if (checkpoint.config_fingerprint != ConfigFingerprint()) {
    return Status::FailedPrecondition(
        StrFormat("tenant %s: snapshot was written under a different "
                  "configuration; refusing to restore",
                  id_.c_str()));
  }
  UKC_ASSIGN_OR_RETURN(stream::StreamingCoreset restored,
                       stream::StreamingCoreset::Deserialize(
                           checkpoint.coreset_image));
  live_ = std::move(restored);
  epoch_ = checkpoint.batches;
  next_index_ = checkpoint.points;
  locations_ = checkpoint.locations;
  expired_points_ = checkpoint.expired_points;
  content_fingerprint_ = checkpoint.content_fingerprint;
  stable_ = live_;
  stable_epoch_ = epoch_;
  state_ = TenantState::kLive;
  centers_cache_.reset();
  return Status::OK();
}

}  // namespace serve
}  // namespace ukc
