#include "serve/registry.h"

#include <optional>
#include <utility>

#include "common/fault_injection.h"
#include "common/strings.h"
#include "obs/trace.h"

namespace ukc {
namespace serve {

namespace {

const char* QueryShapeName(int shape) {
  switch (shape) {
    case 0:
      return "centers";
    case 1:
      return "candidate_cost";
    default:
      return "bracket";
  }
}

}  // namespace

TenantRegistry::TenantRegistry(RegistryOptions options)
    : options_(options),
      pool_(options.pool, options.threads),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &obs::MetricsRegistry::Default()) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.degrade_after_failures < 1) options_.degrade_after_failures = 1;
  if (options_.latency_sample_every == 0) options_.latency_sample_every = 1;
  // Registry-wide counters mirror ServeStats one-for-one (the chaos
  // suite asserts exported snapshot == observed events); handles are
  // resolved once, increments are lock-free relaxed adds.
  obs::MetricsRegistry& m = *metrics_;
  const char* appends = "ukc_serve_appends_total";
  const char* appends_help = "Append submissions by outcome";
  metric_.appends_submitted =
      m.GetCounter(appends, appends_help, {{"outcome", "submitted"}});
  metric_.appends_shed =
      m.GetCounter(appends, appends_help, {{"outcome", "shed"}});
  metric_.enqueue_faults =
      m.GetCounter(appends, appends_help, {{"outcome", "enqueue_fault"}});
  metric_.appends_refused =
      m.GetCounter(appends, appends_help, {{"outcome", "refused"}});
  metric_.appends_applied =
      m.GetCounter(appends, appends_help, {{"outcome", "applied"}});
  metric_.append_failures =
      m.GetCounter(appends, appends_help, {{"outcome", "failed"}});
  const char* snapshots = "ukc_serve_snapshots_total";
  const char* snapshots_help = "Tenant snapshot attempts by outcome";
  metric_.snapshots_saved =
      m.GetCounter(snapshots, snapshots_help, {{"outcome", "saved"}});
  metric_.snapshot_failures =
      m.GetCounter(snapshots, snapshots_help, {{"outcome", "failed"}});
  const char* events = "ukc_serve_tenant_events_total";
  const char* events_help =
      "Tenant lifecycle transitions (degrade, recover, failover restore)";
  metric_.degrade_events =
      m.GetCounter(events, events_help, {{"event", "degrade"}});
  metric_.recover_events =
      m.GetCounter(events, events_help, {{"event", "recover"}});
  metric_.failover_restores =
      m.GetCounter(events, events_help, {{"event", "failover_restore"}});
  const char* queries = "ukc_serve_queries_total";
  const char* queries_help = "Queries by outcome";
  metric_.queries_answered =
      m.GetCounter(queries, queries_help, {{"outcome", "answered"}});
  metric_.queries_deadline_exceeded =
      m.GetCounter(queries, queries_help, {{"outcome", "deadline_exceeded"}});
  metric_.queries_failed =
      m.GetCounter(queries, queries_help, {{"outcome", "failed"}});
  const char* deletes = "ukc_serve_deletes_total";
  const char* deletes_help = "Delete submissions by outcome";
  metric_.deletes_submitted =
      m.GetCounter(deletes, deletes_help, {{"outcome", "submitted"}});
  metric_.deletes_shed =
      m.GetCounter(deletes, deletes_help, {{"outcome", "shed"}});
  metric_.deletes_refused =
      m.GetCounter(deletes, deletes_help, {{"outcome", "refused"}});
  metric_.deletes_applied =
      m.GetCounter(deletes, deletes_help, {{"outcome", "applied"}});
  metric_.delete_failures =
      m.GetCounter(deletes, deletes_help, {{"outcome", "failed"}});
  metric_.points_expired =
      m.GetCounter("ukc_serve_points_expired_total",
                   "Points retired by sliding-window expiry", {});
}

Result<Tenant*> TenantRegistry::CreateTenant(const std::string& id,
                                             TenantConfig config) {
  if (id.empty()) {
    return Status::InvalidArgument("CreateTenant: empty tenant id");
  }
  if (config.dim == 0) {
    return Status::InvalidArgument(
        StrFormat("CreateTenant: tenant %s has dim 0", id.c_str()));
  }
  if (tenants_.count(id) != 0) {
    return Status::InvalidArgument(
        StrFormat("CreateTenant: tenant %s already exists", id.c_str()));
  }
  Slot& slot = tenants_[id];
  slot.tenant = std::make_unique<Tenant>(id, config);
  // Per-tenant serving telemetry: query latency by shape plus the
  // admission queue depth — the "which tenant is slow" handles.
  for (int shape = 0; shape < 3; ++shape) {
    slot.query_seconds[shape] = metrics_->GetHistogram(
        "ukc_serve_query_seconds", "Query latency by tenant and query shape",
        {{"tenant", id}, {"shape", QueryShapeName(shape)}});
  }
  slot.queue_depth =
      metrics_->GetGauge("ukc_serve_queue_depth",
                         "Queued appends awaiting Drain", {{"tenant", id}});
  return slot.tenant.get();
}

Tenant* TenantRegistry::FindTenant(const std::string& id) {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second.tenant.get();
}

const Tenant* TenantRegistry::FindTenant(const std::string& id) const {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second.tenant.get();
}

std::vector<std::string> TenantRegistry::TenantIds() const {
  std::vector<std::string> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, slot] : tenants_) ids.push_back(id);
  return ids;
}

size_t TenantRegistry::QueueDepth(const std::string& id) const {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? 0 : it->second.queue.size();
}

Status TenantRegistry::SubmitAppend(
    const std::string& id, const uncertain::UncertainPointBatch& batch) {
  ++stats_.appends_submitted;
  metric_.appends_submitted->Increment();
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return Status::NotFound(
        StrFormat("SubmitAppend: unknown tenant %s", id.c_str()));
  }
  Slot& slot = it->second;
  // The enqueue boundary is fault-injectable: an injected kUnavailable
  // models a transient admission failure (client may retry); the
  // status returned by the macro is counted and propagated as-is.
  {
    const Status injected = [&]() -> Status {
      UKC_INJECT_FAULT("serve.enqueue");
      return Status::OK();
    }();
    if (!injected.ok()) {
      ++stats_.enqueue_faults;
      metric_.enqueue_faults->Increment();
      return injected;
    }
  }
  if (slot.tenant->state() == TenantState::kDegraded) {
    ++stats_.appends_refused;
    metric_.appends_refused->Increment();
    return Status::FailedPrecondition(
        StrFormat("SubmitAppend: tenant %s is degraded, writes refused",
                  id.c_str()));
  }
  if (slot.queue.size() >= options_.queue_capacity) {
    ++stats_.appends_shed;
    metric_.appends_shed->Increment();
    return ShedStatus(
        StrFormat("tenant %s append queue is full (%zu queued)", id.c_str(),
                  slot.queue.size()));
  }
  PendingOp op;
  op.batch = batch;
  slot.queue.push_back(std::move(op));
  slot.queue_depth->Set(static_cast<int64_t>(slot.queue.size()));
  return Status::OK();
}

Status TenantRegistry::SubmitDelete(
    const std::string& id, uint64_t index,
    const uncertain::UncertainPointBatch& point) {
  ++stats_.deletes_submitted;
  metric_.deletes_submitted->Increment();
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return Status::NotFound(
        StrFormat("SubmitDelete: unknown tenant %s", id.c_str()));
  }
  Slot& slot = it->second;
  if (!slot.tenant->config().allow_deletes) {
    ++stats_.deletes_refused;
    metric_.deletes_refused->Increment();
    return Status::FailedPrecondition(
        StrFormat("SubmitDelete: tenant %s does not allow deletes",
                  id.c_str()));
  }
  if (slot.tenant->state() == TenantState::kDegraded) {
    ++stats_.deletes_refused;
    metric_.deletes_refused->Increment();
    return Status::FailedPrecondition(
        StrFormat("SubmitDelete: tenant %s is degraded, writes refused",
                  id.c_str()));
  }
  if (slot.queue.size() >= options_.queue_capacity) {
    ++stats_.deletes_shed;
    metric_.deletes_shed->Increment();
    return ShedStatus(
        StrFormat("tenant %s write queue is full (%zu queued)", id.c_str(),
                  slot.queue.size()));
  }
  PendingOp op;
  op.is_delete = true;
  op.delete_index = index;
  op.batch = point;
  slot.queue.push_back(std::move(op));
  slot.queue_depth->Set(static_cast<int64_t>(slot.queue.size()));
  return Status::OK();
}

Status TenantRegistry::SubmitAppendWithRetry(
    const std::string& id, const uncertain::UncertainPointBatch& batch,
    const RetryOptions& retry, RetryStats* retry_stats) {
  RetryOptions options = retry;
  options.metrics_site = "serve.submit";
  options.metrics = metrics_;
  // The serve-layer classification: retry transient failures, never
  // sheds — re-submitting into a full queue amplifies the overload the
  // shed exists to relieve.
  options.retry_if = [](const Status& status) {
    return status.IsTransientError() && !IsShed(status);
  };
  return RetryTransient(
      options, [&]() { return SubmitAppend(id, batch); }, retry_stats);
}

void TenantRegistry::RecordFailure(Slot* slot, DrainResult* result) {
  ++slot->consecutive_failures;
  if (slot->consecutive_failures >= options_.degrade_after_failures &&
      slot->tenant->state() == TenantState::kLive) {
    slot->tenant->MarkDegraded();
    ++stats_.degrade_events;
    metric_.degrade_events->Increment();
    ++result->degraded;
  }
}

void TenantRegistry::RecordSuccess(Slot* slot) {
  slot->consecutive_failures = 0;
}

// Deliberately span-free: Drain is a sub-microsecond call on the
// serving write path, and a TraceSpan resolves its series through the
// registry every time — the applied/refused/snapshot counters below
// already tell the whole story at one relaxed add each.
DrainResult TenantRegistry::Drain() {
  DrainResult result;
  for (auto& [id, slot] : tenants_) {
    Tenant& tenant = *slot.tenant;

    // Watchdog recovery probe: a degraded tenant attempts a snapshot
    // of its (always-valid) live state. Success proves the failing
    // boundary cleared -> back to live; failure keeps it degraded.
    // Tenants without a snapshot path recover by probe-free fiat: the
    // only degradable boundary they have is the append itself, which
    // the next applied batch re-tests.
    if (tenant.state() == TenantState::kDegraded) {
      Status probe = Status::OK();
      if (!tenant.config().snapshot_path.empty()) {
        probe = tenant.Snapshot();
      }
      if (probe.ok()) {
        if (!tenant.config().snapshot_path.empty()) {
          ++stats_.snapshots_saved;
          metric_.snapshots_saved->Increment();
          ++result.snapshots;
        }
        tenant.MarkLive();
        slot.consecutive_failures = 0;
        ++stats_.recover_events;
        metric_.recover_events->Increment();
        ++result.recovered;
      } else {
        ++stats_.snapshot_failures;
        metric_.snapshot_failures->Increment();
        ++slot.consecutive_failures;
      }
    }

    while (!slot.queue.empty()) {
      PendingOp op = std::move(slot.queue.front());
      slot.queue.pop_front();
      if (tenant.state() == TenantState::kDegraded) {
        // Queued before the degrade: dropped un-acked (never silently
        // applied later against a rolled-back coreset).
        if (op.is_delete) {
          ++stats_.deletes_refused;
          metric_.deletes_refused->Increment();
        } else {
          ++stats_.appends_refused;
          metric_.appends_refused->Increment();
        }
        ++result.refused;
        continue;
      }
      const uint64_t expired_before = tenant.expired_points();
      const Status applied = op.is_delete
                                 ? tenant.Delete(op.delete_index, op.batch)
                                 : tenant.Append(op.batch);
      if (!applied.ok()) {
        if (op.is_delete) {
          ++stats_.delete_failures;
          metric_.delete_failures->Increment();
        } else {
          ++stats_.append_failures;
          metric_.append_failures->Increment();
        }
        ++result.failed;
        RecordFailure(&slot, &result);
        continue;
      }
      if (op.is_delete) {
        ++stats_.deletes_applied;
        metric_.deletes_applied->Increment();
      } else {
        ++stats_.appends_applied;
        metric_.appends_applied->Increment();
      }
      ++result.applied;
      const uint64_t newly_expired = tenant.expired_points() - expired_before;
      if (newly_expired > 0) {
        stats_.points_expired += newly_expired;
        metric_.points_expired->Add(newly_expired);
        result.expired += newly_expired;
      }

      // Snapshot cadence, counted in acked appends. The watchdog unit
      // is "ack + due snapshot": a failing snapshot boundary must
      // accumulate consecutive failures even though the appends
      // between its attempts keep succeeding.
      const TenantConfig& config = tenant.config();
      bool unit_ok = true;
      if (!config.snapshot_path.empty() &&
          config.snapshot_every_appends > 0 &&
          tenant.epoch() % config.snapshot_every_appends == 0) {
        const Status saved = tenant.Snapshot();
        if (saved.ok()) {
          ++stats_.snapshots_saved;
          metric_.snapshots_saved->Increment();
          ++result.snapshots;
        } else {
          ++stats_.snapshot_failures;
          metric_.snapshot_failures->Increment();
          RecordFailure(&slot, &result);
          unit_ok = false;
        }
      }
      if (unit_ok) RecordSuccess(&slot);
    }
    slot.queue_depth->Set(0);  // Drain always empties the queue.
  }
  return result;
}

bool TenantRegistry::SampleQuery(Slot* slot) {
  return (slot->queries_seen++ % options_.latency_sample_every) == 0;
}

void TenantRegistry::CountQuery(Slot* slot, QueryShape shape,
                                const Status& status, bool sampled,
                                double seconds) {
  if (status.ok()) {
    ++stats_.queries_answered;
    metric_.queries_answered->Increment();
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    ++stats_.queries_deadline_exceeded;
    metric_.queries_deadline_exceeded->Increment();
  } else {
    ++stats_.queries_failed;
    metric_.queries_failed->Increment();
  }
  // Latency is recorded for answered AND failed queries — a tenant
  // burning its whole deadline budget must show up in its p99, not
  // vanish from the series. Unsampled queries skip only the
  // measurement (latency_sample_every); they are still counted above.
  if (slot != nullptr && sampled) slot->query_seconds[shape]->Observe(seconds);
}

Result<Tenant::CentersAnswer> TenantRegistry::QueryCenters(
    const std::string& id, const Deadline& deadline) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    ++stats_.queries_failed;
    metric_.queries_failed->Increment();
    return Status::NotFound(
        StrFormat("QueryCenters: unknown tenant %s", id.c_str()));
  }
  // The timer exists only on sampled queries: its two TSC reads would
  // otherwise dominate the cached-centers hit.
  const bool sampled = SampleQuery(&it->second);
  std::optional<obs::ScopedTimer> timer;
  if (sampled) timer.emplace(nullptr);
  Result<Tenant::CentersAnswer> answer =
      it->second.tenant->QueryCenters(pool_.get(), deadline);
  CountQuery(&it->second, kCenters, answer.status(), sampled,
             sampled ? timer->ElapsedSeconds() : 0.0);
  return answer;
}

Result<Tenant::CostAnswer> TenantRegistry::QueryCandidateCost(
    const std::string& id, const std::vector<double>& candidates,
    size_t num_candidates, const Deadline& deadline) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    ++stats_.queries_failed;
    metric_.queries_failed->Increment();
    return Status::NotFound(
        StrFormat("QueryCandidateCost: unknown tenant %s", id.c_str()));
  }
  const bool sampled = SampleQuery(&it->second);
  std::optional<obs::ScopedTimer> timer;
  if (sampled) timer.emplace(nullptr);
  Result<Tenant::CostAnswer> answer = it->second.tenant->QueryCandidateCost(
      candidates, num_candidates, deadline);
  CountQuery(&it->second, kCandidateCost, answer.status(), sampled,
             sampled ? timer->ElapsedSeconds() : 0.0);
  return answer;
}

Result<Tenant::BracketAnswer> TenantRegistry::QueryBracket(
    const std::string& id, const std::vector<double>& candidates,
    size_t num_candidates, const Deadline& deadline) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    ++stats_.queries_failed;
    metric_.queries_failed->Increment();
    return Status::NotFound(
        StrFormat("QueryBracket: unknown tenant %s", id.c_str()));
  }
  const bool sampled = SampleQuery(&it->second);
  std::optional<obs::ScopedTimer> timer;
  if (sampled) timer.emplace(nullptr);
  Result<Tenant::BracketAnswer> answer =
      it->second.tenant->QueryBracket(candidates, num_candidates, deadline);
  CountQuery(&it->second, kBracket, answer.status(), sampled,
             sampled ? timer->ElapsedSeconds() : 0.0);
  return answer;
}

Status TenantRegistry::RestoreTenant(const std::string& id,
                                     uint64_t* restored_epoch) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return Status::NotFound(
        StrFormat("RestoreTenant: unknown tenant %s", id.c_str()));
  }
  Slot& slot = it->second;
  UKC_RETURN_IF_ERROR(slot.tenant->RestoreFromSnapshot());
  slot.queue.clear();
  slot.queue_depth->Set(0);
  slot.consecutive_failures = 0;
  metric_.failover_restores->Increment();
  if (restored_epoch != nullptr) *restored_epoch = slot.tenant->epoch();
  return Status::OK();
}

}  // namespace serve
}  // namespace ukc
