#include "serve/registry.h"

#include <utility>

#include "common/fault_injection.h"
#include "common/strings.h"

namespace ukc {
namespace serve {

TenantRegistry::TenantRegistry(RegistryOptions options)
    : options_(options), pool_(options.pool, options.threads) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.degrade_after_failures < 1) options_.degrade_after_failures = 1;
}

Result<Tenant*> TenantRegistry::CreateTenant(const std::string& id,
                                             TenantConfig config) {
  if (id.empty()) {
    return Status::InvalidArgument("CreateTenant: empty tenant id");
  }
  if (config.dim == 0) {
    return Status::InvalidArgument(
        StrFormat("CreateTenant: tenant %s has dim 0", id.c_str()));
  }
  if (tenants_.count(id) != 0) {
    return Status::InvalidArgument(
        StrFormat("CreateTenant: tenant %s already exists", id.c_str()));
  }
  Slot& slot = tenants_[id];
  slot.tenant = std::make_unique<Tenant>(id, config);
  return slot.tenant.get();
}

Tenant* TenantRegistry::FindTenant(const std::string& id) {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second.tenant.get();
}

const Tenant* TenantRegistry::FindTenant(const std::string& id) const {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second.tenant.get();
}

std::vector<std::string> TenantRegistry::TenantIds() const {
  std::vector<std::string> ids;
  ids.reserve(tenants_.size());
  for (const auto& [id, slot] : tenants_) ids.push_back(id);
  return ids;
}

size_t TenantRegistry::QueueDepth(const std::string& id) const {
  auto it = tenants_.find(id);
  return it == tenants_.end() ? 0 : it->second.queue.size();
}

Status TenantRegistry::SubmitAppend(
    const std::string& id, const uncertain::UncertainPointBatch& batch) {
  ++stats_.appends_submitted;
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return Status::NotFound(
        StrFormat("SubmitAppend: unknown tenant %s", id.c_str()));
  }
  Slot& slot = it->second;
  // The enqueue boundary is fault-injectable: an injected kUnavailable
  // models a transient admission failure (client may retry); the
  // status returned by the macro is counted and propagated as-is.
  {
    const Status injected = [&]() -> Status {
      UKC_INJECT_FAULT("serve.enqueue");
      return Status::OK();
    }();
    if (!injected.ok()) {
      ++stats_.enqueue_faults;
      return injected;
    }
  }
  if (slot.tenant->state() == TenantState::kDegraded) {
    ++stats_.appends_refused;
    return Status::FailedPrecondition(
        StrFormat("SubmitAppend: tenant %s is degraded, writes refused",
                  id.c_str()));
  }
  if (slot.queue.size() >= options_.queue_capacity) {
    ++stats_.appends_shed;
    return ShedStatus(
        StrFormat("tenant %s append queue is full (%zu queued)", id.c_str(),
                  slot.queue.size()));
  }
  slot.queue.push_back(batch);
  return Status::OK();
}

Status TenantRegistry::SubmitAppendWithRetry(
    const std::string& id, const uncertain::UncertainPointBatch& batch,
    const RetryOptions& retry, RetryStats* retry_stats) {
  RetryOptions options = retry;
  // The serve-layer classification: retry transient failures, never
  // sheds — re-submitting into a full queue amplifies the overload the
  // shed exists to relieve.
  options.retry_if = [](const Status& status) {
    return status.IsTransientError() && !IsShed(status);
  };
  return RetryTransient(
      options, [&]() { return SubmitAppend(id, batch); }, retry_stats);
}

void TenantRegistry::RecordFailure(Slot* slot, DrainResult* result) {
  ++slot->consecutive_failures;
  if (slot->consecutive_failures >= options_.degrade_after_failures &&
      slot->tenant->state() == TenantState::kLive) {
    slot->tenant->MarkDegraded();
    ++stats_.degrade_events;
    ++result->degraded;
  }
}

void TenantRegistry::RecordSuccess(Slot* slot) {
  slot->consecutive_failures = 0;
}

DrainResult TenantRegistry::Drain() {
  DrainResult result;
  for (auto& [id, slot] : tenants_) {
    Tenant& tenant = *slot.tenant;

    // Watchdog recovery probe: a degraded tenant attempts a snapshot
    // of its (always-valid) live state. Success proves the failing
    // boundary cleared -> back to live; failure keeps it degraded.
    // Tenants without a snapshot path recover by probe-free fiat: the
    // only degradable boundary they have is the append itself, which
    // the next applied batch re-tests.
    if (tenant.state() == TenantState::kDegraded) {
      Status probe = Status::OK();
      if (!tenant.config().snapshot_path.empty()) {
        probe = tenant.Snapshot();
      }
      if (probe.ok()) {
        if (!tenant.config().snapshot_path.empty()) {
          ++stats_.snapshots_saved;
          ++result.snapshots;
        }
        tenant.MarkLive();
        slot.consecutive_failures = 0;
        ++stats_.recover_events;
        ++result.recovered;
      } else {
        ++stats_.snapshot_failures;
        ++slot.consecutive_failures;
      }
    }

    while (!slot.queue.empty()) {
      uncertain::UncertainPointBatch batch = std::move(slot.queue.front());
      slot.queue.pop_front();
      if (tenant.state() == TenantState::kDegraded) {
        // Queued before the degrade: dropped un-acked (never silently
        // applied later against a rolled-back coreset).
        ++stats_.appends_refused;
        ++result.refused;
        continue;
      }
      const Status applied = tenant.Append(batch);
      if (!applied.ok()) {
        ++stats_.append_failures;
        ++result.failed;
        RecordFailure(&slot, &result);
        continue;
      }
      ++stats_.appends_applied;
      ++result.applied;

      // Snapshot cadence, counted in acked appends. The watchdog unit
      // is "ack + due snapshot": a failing snapshot boundary must
      // accumulate consecutive failures even though the appends
      // between its attempts keep succeeding.
      const TenantConfig& config = tenant.config();
      bool unit_ok = true;
      if (!config.snapshot_path.empty() &&
          config.snapshot_every_appends > 0 &&
          tenant.epoch() % config.snapshot_every_appends == 0) {
        const Status saved = tenant.Snapshot();
        if (saved.ok()) {
          ++stats_.snapshots_saved;
          ++result.snapshots;
        } else {
          ++stats_.snapshot_failures;
          RecordFailure(&slot, &result);
          unit_ok = false;
        }
      }
      if (unit_ok) RecordSuccess(&slot);
    }
  }
  return result;
}

void TenantRegistry::CountQuery(const Status& status) {
  if (status.ok()) {
    ++stats_.queries_answered;
  } else if (status.code() == StatusCode::kDeadlineExceeded) {
    ++stats_.queries_deadline_exceeded;
  } else {
    ++stats_.queries_failed;
  }
}

Result<Tenant::CentersAnswer> TenantRegistry::QueryCenters(
    const std::string& id, const Deadline& deadline) {
  Tenant* tenant = FindTenant(id);
  if (tenant == nullptr) {
    ++stats_.queries_failed;
    return Status::NotFound(
        StrFormat("QueryCenters: unknown tenant %s", id.c_str()));
  }
  Result<Tenant::CentersAnswer> answer =
      tenant->QueryCenters(pool_.get(), deadline);
  CountQuery(answer.status());
  return answer;
}

Result<Tenant::CostAnswer> TenantRegistry::QueryCandidateCost(
    const std::string& id, const std::vector<double>& candidates,
    size_t num_candidates, const Deadline& deadline) {
  Tenant* tenant = FindTenant(id);
  if (tenant == nullptr) {
    ++stats_.queries_failed;
    return Status::NotFound(
        StrFormat("QueryCandidateCost: unknown tenant %s", id.c_str()));
  }
  Result<Tenant::CostAnswer> answer =
      tenant->QueryCandidateCost(candidates, num_candidates, deadline);
  CountQuery(answer.status());
  return answer;
}

Result<Tenant::BracketAnswer> TenantRegistry::QueryBracket(
    const std::string& id, const std::vector<double>& candidates,
    size_t num_candidates, const Deadline& deadline) {
  Tenant* tenant = FindTenant(id);
  if (tenant == nullptr) {
    ++stats_.queries_failed;
    return Status::NotFound(
        StrFormat("QueryBracket: unknown tenant %s", id.c_str()));
  }
  Result<Tenant::BracketAnswer> answer =
      tenant->QueryBracket(candidates, num_candidates, deadline);
  CountQuery(answer.status());
  return answer;
}

Status TenantRegistry::RestoreTenant(const std::string& id,
                                     uint64_t* restored_epoch) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) {
    return Status::NotFound(
        StrFormat("RestoreTenant: unknown tenant %s", id.c_str()));
  }
  Slot& slot = it->second;
  UKC_RETURN_IF_ERROR(slot.tenant->RestoreFromSnapshot());
  slot.queue.clear();
  slot.consecutive_failures = 0;
  if (restored_epoch != nullptr) *restored_epoch = slot.tenant->epoch();
  return Status::OK();
}

}  // namespace serve
}  // namespace ukc
