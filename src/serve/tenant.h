// One tenant stream of the serving core: a live StreamingCoreset fed
// by appends, three query shapes answered from coreset state, and a
// checkpoint-backed failover path.
//
// State model:
//   - live_ coreset: the authoritative summary. Appends are
//     ALL-OR-NOTHING with respect to injectable faults (the
//     serve.append site fires before any mutation), so an errored
//     append leaves the coreset bitwise untouched and un-acked — the
//     invariant the chaos suite's reference replay rests on.
//   - stable_ coreset: the copy frozen by the last successful
//     snapshot. A degraded tenant serves queries from it (flagged
//     `stale`) while writes are refused, so overload or a failing
//     snapshot boundary degrades answers to bounded staleness instead
//     of unavailability.
//   - epoch: the count of acked appends. Every answer carries the
//     epoch it was computed at; two replicas at the same epoch that
//     acked the same append sequence answer BITWISE identically (the
//     coreset's partition invariance plus the solve pipeline's
//     thread-invariance, asserted by tests/serve_test.cc).
//
// Failover: Snapshot() persists {config fingerprint, content
// fingerprint (running hash of acked appends), cursor, coreset image}
// through the PR-6 crash-consistent sidecar (stream/checkpoint.h).
// RestoreFromSnapshot() rebuilds the tenant at the snapshot's epoch;
// the registry's caller replays the acked suffix from its own outbox
// to catch up — after which the restored replica is bit-equal to an
// uninterrupted one.
//
// Not thread-safe; externally synchronized by the registry (see
// serve/serve.h design stance). Queries may fan out internally over a
// borrowed pool.

#ifndef UKC_SERVE_TENANT_H_
#define UKC_SERVE_TENANT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "serve/serve.h"
#include "stream/coreset.h"
#include "uncertain/chunk.h"

namespace ukc {

class ThreadPool;

namespace serve {

class Tenant {
 public:
  /// "k centers now": centers solved on the current coreset cells.
  struct CentersAnswer {
    uint64_t epoch = 0;   // Acked appends the answer reflects.
    bool stale = false;   // True when served from the stable snapshot.
    size_t k = 0;         // Centers returned (config k clamped to cells).
    std::vector<double> center_coords;  // k * dim, row-major.
    double cost = 0.0;    // Exact expected cost on the representatives.
    double lower = 0.0;   // Certified bracket on the full-data cost:
    double upper = 0.0;   // cost -/+ the coreset error bound, >= 0.
  };

  /// "cost of this candidate set": max over cells of the distance from
  /// the representative to its nearest candidate.
  struct CostAnswer {
    uint64_t epoch = 0;
    bool stale = false;
    double cost = 0.0;
  };

  /// "certified bracket": CostAnswer plus the coreset error bound
  /// folded into rigorous full-data bounds.
  struct BracketAnswer {
    uint64_t epoch = 0;
    bool stale = false;
    double cost = 0.0;
    double error_bound = 0.0;
    double lower = 0.0;
    double upper = 0.0;
  };

  Tenant(std::string id, TenantConfig config);

  const std::string& id() const { return id_; }
  /// The EFFECTIVE configuration: window/delete settings are
  /// normalized into the coreset options at construction (see
  /// NormalizeConfig), so this may differ from the TenantConfig the
  /// tenant was created with.
  const TenantConfig& config() const { return config_; }
  TenantState state() const { return state_; }
  uint64_t epoch() const { return epoch_; }
  uint64_t next_index() const { return next_index_; }
  uint64_t stable_epoch() const { return stable_epoch_; }
  size_t num_cells() const { return live_.num_cells(); }
  /// Cumulative points retired by window expiry (monotone; restored
  /// from the snapshot on failover).
  uint64_t expired_points() const { return expired_points_; }

  /// Absorbs one batch of uncertain points into the live coreset,
  /// assigning stream indices from the tenant's own cursor (the
  /// batch's start_index is ignored — serve-side sequencing is the
  /// tenant's job). Fault site `serve.append` fires before any
  /// mutation; structural validation also precedes mutation, so an
  /// error leaves the tenant bitwise unchanged. Degraded tenants
  /// refuse writes with kFailedPrecondition.
  ///
  /// With config().window_points = W > 0, expiry runs after EVERY
  /// acked point (watermark = acked count - W): the (Add, Expire)
  /// sequence is then a pure function of the acked point sequence, so
  /// replicas that acked the same points are bitwise identical no
  /// matter how the stream was split into batches. The companion fault
  /// site `stream.expire` fires at the same pre-mutation boundary —
  /// append + expiry is one all-or-nothing unit.
  Status Append(const uncertain::UncertainPointBatch& batch);

  /// Exact single-point delete (config().allow_deletes only). The
  /// caller replays the point's data: `point` holds exactly the one
  /// uncertain point that was acked at stream index `index`; a
  /// mismatch (or an index already expired / never acked) is an error
  /// that leaves the tenant bitwise unchanged. Acked deletes advance
  /// the epoch and fold an op-tagged record into the content
  /// fingerprint, so two replicas acking the same append/delete
  /// sequence stay fingerprint- and coreset-identical. Fault site
  /// `serve.delete` fires before any mutation.
  Status Delete(uint64_t index, const uncertain::UncertainPointBatch& point);

  /// Solves k-center on the current cells (live, or stable when
  /// degraded). The solve shares `pool` and honors `deadline`
  /// (expiry -> kDeadlineExceeded, state untouched). Successful
  /// answers are cached per (epoch, staleness) — repeated queries
  /// between appends cost one lookup.
  Result<CentersAnswer> QueryCenters(ThreadPool* pool,
                                     const Deadline& deadline);

  /// Exact max-over-cells cost of an explicit candidate set
  /// (`num_candidates` centers, dim doubles each). Deterministic
  /// fixed-order scan; deadline checked per cell chunk.
  Result<CostAnswer> QueryCandidateCost(const std::vector<double>& candidates,
                                        size_t num_candidates,
                                        const Deadline& deadline);

  /// QueryCandidateCost plus the certified full-data bracket.
  Result<BracketAnswer> QueryBracket(const std::vector<double>& candidates,
                                     size_t num_candidates,
                                     const Deadline& deadline);

  /// Persists the live state through the crash-consistent sidecar
  /// (config().snapshot_path; kFailedPrecondition when unset). On
  /// success the stable coreset is refreshed — the snapshot is both
  /// the failover artifact and the degraded-mode serving source.
  /// Fault site `serve.snapshot` (plus the checkpoint.* sites inside
  /// SaveCheckpoint).
  Status Snapshot();

  /// Rebuilds the tenant from its snapshot: epoch, cursor, content
  /// fingerprint and coreset all roll back to the snapshot point, the
  /// state returns to kLive and failure counters clear. The caller
  /// replays acked appends past the restored epoch to catch up. Fault
  /// site `serve.restore` (plus checkpoint.read inside LoadCheckpoint).
  Status RestoreFromSnapshot();

  /// Watchdog hooks (driven by the registry): failure accounting and
  /// the degrade/recover transitions.
  void MarkDegraded() { state_ = TenantState::kDegraded; }
  void MarkLive() { state_ = TenantState::kLive; }

  /// Fingerprint of the tenant configuration (gates restore).
  uint64_t ConfigFingerprint() const;
  /// Running hash of the acked append prefix.
  uint64_t content_fingerprint() const { return content_fingerprint_; }

  /// The current cells (live, or stable when degraded) — the chaos
  /// suite's bitwise-comparison hook.
  std::vector<stream::StreamingCoreset::Cell> ExtractCells() const;

 private:
  // Derives the effective coreset options from the window/delete
  // settings: allow_deletes forces track_members, and either feature
  // defaults churn_bucket when the caller left it 0. Runs once in the
  // constructor so config(), ConfigFingerprint() and the live coreset
  // all agree on the effective values.
  static TenantConfig NormalizeConfig(TenantConfig config);

  // The coreset queries answer from: live when kLive, stable when
  // kDegraded. Second element: the epoch that source reflects.
  const stream::StreamingCoreset& QuerySource(uint64_t* source_epoch) const;

  std::string id_;
  TenantConfig config_;
  TenantState state_ = TenantState::kLive;

  stream::StreamingCoreset live_;
  uint64_t epoch_ = 0;        // Acked ops (appends + deletes).
  uint64_t next_index_ = 0;   // Stream index of the next point.
  uint64_t locations_ = 0;    // Locations consumed (cursor bookkeeping).
  uint64_t expired_points_ = 0;  // Cumulative window-expiry retirements.
  uint64_t content_fingerprint_;

  // Last successful snapshot's coreset (== live_ at stable_epoch_).
  stream::StreamingCoreset stable_;
  uint64_t stable_epoch_ = 0;

  // QueryCenters cache: valid while (epoch, staleness) match. Content
  // at a given (epoch, stale) pair is unique within a tenant lifetime
  // — epochs only move via acked appends or a restore that rewinds to
  // a prefix of the same acked sequence — so the key cannot alias.
  std::optional<CentersAnswer> centers_cache_;

  // Append scratch: the whole batch is summarized (expected points +
  // spreads) and range-checked BEFORE the first coreset mutation, so
  // every failure path leaves the tenant bitwise unchanged.
  std::vector<double> expected_scratch_;
  std::vector<double> spread_scratch_;
};

}  // namespace serve
}  // namespace ukc

#endif  // UKC_SERVE_TENANT_H_
