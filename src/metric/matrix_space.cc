#include "metric/matrix_space.h"

#include <cmath>

#include "common/strings.h"

namespace ukc {
namespace metric {

Result<std::shared_ptr<MatrixSpace>> MatrixSpace::Build(
    std::vector<std::vector<double>> matrix, bool check_triangle) {
  const size_t n = matrix.size();
  if (n == 0) {
    return Status::InvalidArgument("MatrixSpace: empty matrix");
  }
  for (size_t i = 0; i < n; ++i) {
    if (matrix[i].size() != n) {
      return Status::InvalidArgument(
          StrFormat("MatrixSpace: row %zu has %zu entries, want %zu", i,
                    matrix[i].size(), n));
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (matrix[i][i] != 0.0) {
      return Status::InvalidArgument(
          StrFormat("MatrixSpace: diagonal entry (%zu,%zu) is %g, want 0", i, i,
                    matrix[i][i]));
    }
    for (size_t j = 0; j < n; ++j) {
      const double d = matrix[i][j];
      if (!(d >= 0.0) || std::isinf(d)) {  // Also rejects NaN.
        return Status::InvalidArgument(
            StrFormat("MatrixSpace: entry (%zu,%zu)=%g is not a finite "
                      "non-negative distance",
                      i, j, d));
      }
      if (matrix[i][j] != matrix[j][i]) {
        return Status::InvalidArgument(
            StrFormat("MatrixSpace: asymmetric at (%zu,%zu): %g vs %g", i, j,
                      matrix[i][j], matrix[j][i]));
      }
      if (i != j && d == 0.0) {
        return Status::InvalidArgument(
            StrFormat("MatrixSpace: zero distance between distinct sites "
                      "%zu and %zu",
                      i, j));
      }
    }
  }
  if (check_triangle) {
    // Allow a tiny relative slack for matrices assembled from floating
    // point computations (e.g. shortest paths).
    constexpr double kSlack = 1e-9;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = 0; j < n; ++j) {
        for (size_t l = 0; l < n; ++l) {
          const double lhs = matrix[i][j];
          const double rhs = matrix[i][l] + matrix[l][j];
          if (lhs > rhs * (1.0 + kSlack)) {
            return Status::InvalidArgument(
                StrFormat("MatrixSpace: triangle inequality violated: "
                          "d(%zu,%zu)=%g > d(%zu,%zu)+d(%zu,%zu)=%g",
                          i, j, lhs, i, l, l, j, rhs));
          }
        }
      }
    }
  }

  std::vector<double> flat;
  flat.reserve(n * n);
  for (const auto& row : matrix) {
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return std::shared_ptr<MatrixSpace>(
      new MatrixSpace(static_cast<SiteId>(n), std::move(flat)));
}

MatrixSpace::MatrixSpace(SiteId n, std::vector<double> flat)
    : n_(n), flat_(std::move(flat)) {}

double MatrixSpace::Distance(SiteId a, SiteId b) const {
  UKC_DCHECK(a >= 0 && a < n_);
  UKC_DCHECK(b >= 0 && b < n_);
  return flat_[static_cast<size_t>(a) * static_cast<size_t>(n_) +
               static_cast<size_t>(b)];
}

std::string MatrixSpace::Name() const {
  return StrFormat("Matrix(%d sites)", n_);
}

}  // namespace metric
}  // namespace ukc
