#include "metric/euclidean_space.h"

#include "common/strings.h"

namespace ukc {
namespace metric {

std::string NormToString(Norm norm) {
  switch (norm) {
    case Norm::kL2:
      return "L2";
    case Norm::kL1:
      return "L1";
    case Norm::kLInf:
      return "LInf";
  }
  return "?";
}

EuclideanSpace::EuclideanSpace(size_t dim, Norm norm) : dim_(dim), norm_(norm) {
  UKC_CHECK_GE(dim, 1u);
}

EuclideanSpace::EuclideanSpace(size_t dim, std::vector<geometry::Point> points,
                               Norm norm)
    : dim_(dim), norm_(norm), points_(std::move(points)) {
  UKC_CHECK_GE(dim, 1u);
  for (const auto& p : points_) {
    UKC_CHECK_EQ(p.dim(), dim_) << "point dimension mismatch";
  }
}

double EuclideanSpace::PointDistance(const geometry::Point& a,
                                     const geometry::Point& b) const {
  switch (norm_) {
    case Norm::kL2:
      return geometry::Distance(a, b);
    case Norm::kL1:
      return geometry::L1Distance(a, b);
    case Norm::kLInf:
      return geometry::LInfDistance(a, b);
  }
  return 0.0;
}

double EuclideanSpace::Distance(SiteId a, SiteId b) const {
  return PointDistance(point(a), point(b));
}

std::string EuclideanSpace::Name() const {
  return StrFormat("%s(R^%zu, %d sites)", NormToString(norm_).c_str(), dim_,
                   static_cast<int>(points_.size()));
}

SiteId EuclideanSpace::AddPoint(geometry::Point point) {
  UKC_CHECK_EQ(point.dim(), dim_) << "point dimension mismatch";
  points_.push_back(std::move(point));
  return static_cast<SiteId>(points_.size()) - 1;
}

const geometry::Point& EuclideanSpace::point(SiteId id) const {
  UKC_CHECK_GE(id, 0);
  UKC_CHECK_LT(static_cast<size_t>(id), points_.size());
  return points_[static_cast<size_t>(id)];
}

double EuclideanSpace::DistanceToPoint(SiteId a, const geometry::Point& p) const {
  return PointDistance(point(a), p);
}

}  // namespace metric
}  // namespace ukc
