#include "metric/euclidean_space.h"

#include <limits>

#include "common/strings.h"

namespace ukc {
namespace metric {

std::string NormToString(Norm norm) {
  switch (norm) {
    case Norm::kL2:
      return "L2";
    case Norm::kL1:
      return "L1";
    case Norm::kLInf:
      return "LInf";
  }
  return "?";
}

EuclideanSpace::EuclideanSpace(size_t dim, Norm norm) : dim_(dim), norm_(norm) {
  UKC_CHECK_GE(dim, 1u);
}

EuclideanSpace::EuclideanSpace(size_t dim, std::vector<geometry::Point> points,
                               Norm norm)
    : dim_(dim), norm_(norm) {
  UKC_CHECK_GE(dim, 1u);
  coords_.reserve(points.size() * dim_);
  for (const auto& p : points) {
    UKC_CHECK_EQ(p.dim(), dim_) << "point dimension mismatch";
    coords_.insert(coords_.end(), p.coords().begin(), p.coords().end());
  }
  num_sites_ = static_cast<SiteId>(points.size());
}

double EuclideanSpace::PointDistance(const geometry::Point& a,
                                     const geometry::Point& b) const {
  UKC_DCHECK_EQ(a.dim(), dim_);
  UKC_DCHECK_EQ(b.dim(), dim_);
  return NormDistanceKernel(norm_, a.coords().data(), b.coords().data(), dim_);
}

std::string EuclideanSpace::Name() const {
  return StrFormat("%s(R^%zu, %d sites)", NormToString(norm_).c_str(), dim_,
                   static_cast<int>(num_sites_));
}

SiteId EuclideanSpace::AddPoint(const geometry::Point& point) {
  UKC_CHECK_EQ(point.dim(), dim_) << "point dimension mismatch";
  return AddCoords(point.coords().data());
}

SiteId EuclideanSpace::AddCoords(const double* data) {
  coords_.insert(coords_.end(), data, data + dim_);
  return num_sites_++;
}

void EuclideanSpace::CheckSite(SiteId id) const {
  UKC_CHECK(id >= 0 && id < num_sites_) << "site id out of range: " << id;
}

double EuclideanSpace::DistanceToSet(SiteId a,
                                     const std::vector<SiteId>& candidates) const {
  // Hard-check ids up front (the old boxed accessor checked every
  // access); the scan itself then runs unchecked over the arena.
  CheckSite(a);
  for (SiteId c : candidates) CheckSite(c);
  const double* from = coords(a);
  double best = std::numeric_limits<double>::infinity();
  for (SiteId c : candidates) {
    const double d = NormDistanceKernel(norm_, from, coords(c), dim_);
    if (d < best) best = d;
  }
  return best;
}

SiteId EuclideanSpace::NearestInSet(SiteId a,
                                    const std::vector<SiteId>& candidates) const {
  CheckSite(a);
  for (SiteId c : candidates) CheckSite(c);
  const double* from = coords(a);
  SiteId best = kInvalidSite;
  double best_distance = std::numeric_limits<double>::infinity();
  for (SiteId c : candidates) {
    const double d = NormDistanceKernel(norm_, from, coords(c), dim_);
    if (d < best_distance) {
      best_distance = d;
      best = c;
    }
  }
  return best;
}

void EuclideanSpace::GatherCoords(const std::vector<SiteId>& sites,
                                  std::vector<double>* out) const {
  UKC_CHECK(out != nullptr);
  for (SiteId s : sites) CheckSite(s);
  out->resize(sites.size() * dim_);
  double* dst = out->data();
  for (SiteId s : sites) {
    const double* src = coords(s);
    for (size_t a = 0; a < dim_; ++a) dst[a] = src[a];
    dst += dim_;
  }
}

}  // namespace metric
}  // namespace ukc
