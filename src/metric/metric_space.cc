#include "metric/metric_space.h"

#include <limits>

namespace ukc {
namespace metric {

double MetricSpace::DistanceToSet(SiteId a,
                                  const std::vector<SiteId>& candidates) const {
  double best = std::numeric_limits<double>::infinity();
  for (SiteId c : candidates) {
    const double d = Distance(a, c);
    if (d < best) best = d;
  }
  return best;
}

SiteId MetricSpace::NearestInSet(SiteId a,
                                 const std::vector<SiteId>& candidates) const {
  SiteId best = kInvalidSite;
  double best_distance = std::numeric_limits<double>::infinity();
  for (SiteId c : candidates) {
    const double d = Distance(a, c);
    if (d < best_distance) {
      best_distance = d;
      best = c;
    }
  }
  return best;
}

}  // namespace metric
}  // namespace ukc
