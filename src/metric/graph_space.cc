#include "metric/graph_space.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <utility>

#include "common/strings.h"

namespace ukc {
namespace metric {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Single-source Dijkstra over an adjacency list.
void Dijkstra(const std::vector<std::vector<std::pair<SiteId, double>>>& adjacency,
              SiteId source, double* distances) {
  const size_t n = adjacency.size();
  for (size_t i = 0; i < n; ++i) distances[i] = kInf;
  distances[source] = 0.0;
  using Entry = std::pair<double, SiteId>;  // (distance, vertex)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> frontier;
  frontier.emplace(0.0, source);
  while (!frontier.empty()) {
    const auto [dist, u] = frontier.top();
    frontier.pop();
    if (dist > distances[u]) continue;  // Stale entry.
    for (const auto& [v, w] : adjacency[u]) {
      const double candidate = dist + w;
      if (candidate < distances[v]) {
        distances[v] = candidate;
        frontier.emplace(candidate, v);
      }
    }
  }
}

}  // namespace

Result<std::shared_ptr<GraphSpace>> GraphSpace::Build(
    SiteId num_vertices, const std::vector<Edge>& edges) {
  if (num_vertices <= 0) {
    return Status::InvalidArgument("GraphSpace: need at least one vertex");
  }
  std::vector<std::vector<std::pair<SiteId, double>>> adjacency(
      static_cast<size_t>(num_vertices));
  for (size_t e = 0; e < edges.size(); ++e) {
    const Edge& edge = edges[e];
    if (edge.u < 0 || edge.u >= num_vertices || edge.v < 0 ||
        edge.v >= num_vertices) {
      return Status::InvalidArgument(
          StrFormat("GraphSpace: edge %zu endpoints (%d,%d) out of range", e,
                    edge.u, edge.v));
    }
    if (edge.u == edge.v) {
      return Status::InvalidArgument(
          StrFormat("GraphSpace: self loop at vertex %d (edge %zu)", edge.u, e));
    }
    if (!(edge.weight > 0.0) || std::isinf(edge.weight)) {
      return Status::InvalidArgument(
          StrFormat("GraphSpace: edge %zu weight %g must be positive and finite",
                    e, edge.weight));
    }
    adjacency[static_cast<size_t>(edge.u)].emplace_back(edge.v, edge.weight);
    adjacency[static_cast<size_t>(edge.v)].emplace_back(edge.u, edge.weight);
  }

  const size_t n = static_cast<size_t>(num_vertices);
  std::vector<double> flat(n * n, kInf);
  for (size_t s = 0; s < n; ++s) {
    Dijkstra(adjacency, static_cast<SiteId>(s), flat.data() + s * n);
  }
  for (double d : flat) {
    if (std::isinf(d)) {
      return Status::InvalidArgument(
          "GraphSpace: graph is disconnected; the shortest-path metric "
          "requires a connected graph");
    }
  }
  // Two Dijkstra runs sum the same path in opposite orders, which can
  // differ in the last bit; force exact symmetry by keeping the smaller.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double d = std::min(flat[i * n + j], flat[j * n + i]);
      flat[i * n + j] = d;
      flat[j * n + i] = d;
    }
  }
  return std::shared_ptr<GraphSpace>(
      new GraphSpace(num_vertices, edges.size(), std::move(flat)));
}

GraphSpace::GraphSpace(SiteId n, size_t num_edges, std::vector<double> flat)
    : n_(n), num_edges_(num_edges), flat_(std::move(flat)) {}

double GraphSpace::Distance(SiteId a, SiteId b) const {
  UKC_DCHECK(a >= 0 && a < n_);
  UKC_DCHECK(b >= 0 && b < n_);
  return flat_[static_cast<size_t>(a) * static_cast<size_t>(n_) +
               static_cast<size_t>(b)];
}

std::string GraphSpace::Name() const {
  return StrFormat("Graph(%d vertices, %zu edges)", n_, num_edges_);
}

}  // namespace metric
}  // namespace ukc
