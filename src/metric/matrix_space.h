// Finite metric space given by an explicit symmetric distance matrix.

#ifndef UKC_METRIC_MATRIX_SPACE_H_
#define UKC_METRIC_MATRIX_SPACE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "metric/metric_space.h"

namespace ukc {
namespace metric {

/// A metric space backed by a dense n×n distance matrix (row-major).
/// Build() validates the metric axioms: symmetry, non-negativity, zero
/// diagonal, and — when `check_triangle` is set — the full O(n³)
/// triangle-inequality check.
class MatrixSpace : public MetricSpace {
 public:
  /// Validates the matrix and constructs the space.
  static Result<std::shared_ptr<MatrixSpace>> Build(
      std::vector<std::vector<double>> matrix, bool check_triangle = true);

  double Distance(SiteId a, SiteId b) const override;
  SiteId num_sites() const override { return n_; }
  std::string Name() const override;

 private:
  MatrixSpace(SiteId n, std::vector<double> flat);

  SiteId n_;
  std::vector<double> flat_;  // n_*n_ row-major distances.
};

}  // namespace metric
}  // namespace ukc

#endif  // UKC_METRIC_MATRIX_SPACE_H_
