// Abstract finite metric space interface.
//
// All clustering algorithms in this library address points through
// *site ids* — indices into a metric space. This unifies the Euclidean
// and general-metric paths of the paper: Euclidean algorithms may mint
// new sites for constructed points (expected points, refined centers),
// while finite metrics (distance matrix, graph shortest path) restrict
// centers to existing sites, exactly as the paper's general-metric
// theorems assume.

#ifndef UKC_METRIC_METRIC_SPACE_H_
#define UKC_METRIC_METRIC_SPACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ukc {
namespace metric {

/// Index of a site (point) within a MetricSpace.
using SiteId = int32_t;

/// Sentinel for "no site".
inline constexpr SiteId kInvalidSite = -1;

/// A finite metric space: a set of sites {0, ..., num_sites()-1} with a
/// distance oracle. Implementations must satisfy the metric axioms;
/// CheckMetricAxioms (metric_checker.h) verifies them empirically.
class MetricSpace {
 public:
  virtual ~MetricSpace() = default;

  /// The distance between two sites. Must be symmetric, non-negative,
  /// zero on the diagonal, and satisfy the triangle inequality.
  virtual double Distance(SiteId a, SiteId b) const = 0;

  /// Number of sites currently in the space.
  virtual SiteId num_sites() const = 0;

  /// Human-readable space name for reports.
  virtual std::string Name() const = 0;

  /// The distance from `a` to the nearest site in `candidates`
  /// (infinity when `candidates` is empty). Virtual so that spaces with
  /// contiguous storage can scan without per-pair virtual dispatch.
  virtual double DistanceToSet(SiteId a,
                               const std::vector<SiteId>& candidates) const;

  /// The site in `candidates` nearest to `a` (kInvalidSite when empty);
  /// ties broken toward the earliest candidate.
  virtual SiteId NearestInSet(SiteId a,
                              const std::vector<SiteId>& candidates) const;
};

}  // namespace metric
}  // namespace ukc

#endif  // UKC_METRIC_METRIC_SPACE_H_
