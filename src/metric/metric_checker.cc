#include "metric/metric_checker.h"

#include <cmath>

#include "common/strings.h"

namespace ukc {
namespace metric {

namespace {

Status CheckTriple(const MetricSpace& space, SiteId i, SiteId j, SiteId l,
                   double slack) {
  const double dij = space.Distance(i, j);
  const double dil = space.Distance(i, l);
  const double dlj = space.Distance(l, j);
  if (dij > (dil + dlj) * (1.0 + slack)) {
    return Status::FailedPrecondition(
        StrFormat("triangle inequality violated: d(%d,%d)=%g > "
                  "d(%d,%d)+d(%d,%d)=%g",
                  i, j, dij, i, l, l, j, dil + dlj));
  }
  return Status::OK();
}

}  // namespace

Status CheckMetricAxioms(const MetricSpace& space,
                         const MetricCheckOptions& options) {
  const SiteId n = space.num_sites();
  if (n <= 0) {
    return Status::FailedPrecondition("metric space has no sites");
  }

  // Pairwise axioms: always exhaustive when affordable, sampled
  // otherwise.
  const bool pairwise_exhaustive =
      static_cast<int64_t>(n) * n <= options.exhaustive_limit;
  Rng rng(options.seed);
  auto check_pair = [&](SiteId i, SiteId j) -> Status {
    const double d = space.Distance(i, j);
    if (std::isnan(d) || d < 0.0) {
      return Status::FailedPrecondition(
          StrFormat("d(%d,%d)=%g is negative or NaN", i, j, d));
    }
    if (i == j && d != 0.0) {
      return Status::FailedPrecondition(
          StrFormat("d(%d,%d)=%g, the diagonal must be zero", i, j, d));
    }
    const double reverse = space.Distance(j, i);
    if (d != reverse) {
      return Status::FailedPrecondition(
          StrFormat("asymmetry: d(%d,%d)=%g but d(%d,%d)=%g", i, j, d, j, i,
                    reverse));
    }
    return Status::OK();
  };

  if (pairwise_exhaustive) {
    for (SiteId i = 0; i < n; ++i) {
      for (SiteId j = i; j < n; ++j) {
        UKC_RETURN_IF_ERROR(check_pair(i, j));
      }
    }
  } else {
    for (int64_t s = 0; s < options.num_samples; ++s) {
      const SiteId i = static_cast<SiteId>(rng.UniformInt(0, n - 1));
      const SiteId j = static_cast<SiteId>(rng.UniformInt(0, n - 1));
      UKC_RETURN_IF_ERROR(check_pair(i, j));
    }
  }

  // Triangle inequality.
  const int64_t cube = static_cast<int64_t>(n) * n * n;
  if (cube <= options.exhaustive_limit) {
    for (SiteId i = 0; i < n; ++i) {
      for (SiteId j = 0; j < n; ++j) {
        for (SiteId l = 0; l < n; ++l) {
          UKC_RETURN_IF_ERROR(
              CheckTriple(space, i, j, l, options.relative_slack));
        }
      }
    }
  } else {
    for (int64_t s = 0; s < options.num_samples; ++s) {
      const SiteId i = static_cast<SiteId>(rng.UniformInt(0, n - 1));
      const SiteId j = static_cast<SiteId>(rng.UniformInt(0, n - 1));
      const SiteId l = static_cast<SiteId>(rng.UniformInt(0, n - 1));
      UKC_RETURN_IF_ERROR(CheckTriple(space, i, j, l, options.relative_slack));
    }
  }
  return Status::OK();
}

}  // namespace metric
}  // namespace ukc
