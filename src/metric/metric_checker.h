// Empirical verification that a MetricSpace satisfies the metric axioms.
// Used by tests and as a debugging aid for user-supplied spaces.

#ifndef UKC_METRIC_METRIC_CHECKER_H_
#define UKC_METRIC_METRIC_CHECKER_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "metric/metric_space.h"

namespace ukc {
namespace metric {

/// Options for CheckMetricAxioms.
struct MetricCheckOptions {
  /// Check every (i,j,k) triple when num_sites^3 does not exceed this;
  /// otherwise sample `num_samples` random triples.
  int64_t exhaustive_limit = 1'000'000;
  int64_t num_samples = 100'000;
  /// Relative slack tolerated in the triangle inequality, for distances
  /// assembled from floating-point arithmetic.
  double relative_slack = 1e-9;
  uint64_t seed = 7;
};

/// Verifies non-negativity, zero diagonal, symmetry, and the triangle
/// inequality. Returns FailedPrecondition naming the first offending
/// pair/triple, or OK.
Status CheckMetricAxioms(const MetricSpace& space,
                         const MetricCheckOptions& options = {});

}  // namespace metric
}  // namespace ukc

#endif  // UKC_METRIC_METRIC_CHECKER_H_
