// Shortest-path metric of a weighted undirected graph.
//
// This is the "general metric space" substrate for the paper's metric
// theorems (2.6, 2.7): sites are graph vertices, distances are shortest
// paths. All-pairs distances are precomputed with Dijkstra from every
// vertex at Build() time, so Distance() is an O(1) table lookup — the
// clustering algorithms probe distances heavily.

#ifndef UKC_METRIC_GRAPH_SPACE_H_
#define UKC_METRIC_GRAPH_SPACE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "metric/metric_space.h"

namespace ukc {
namespace metric {

/// An undirected weighted edge between vertices u and v.
struct Edge {
  SiteId u = 0;
  SiteId v = 0;
  double weight = 0.0;
};

/// Shortest-path metric over a connected weighted undirected graph.
class GraphSpace : public MetricSpace {
 public:
  /// Validates the graph (vertex ids in range, positive finite weights,
  /// no self loops, connected) and precomputes all-pairs shortest paths.
  static Result<std::shared_ptr<GraphSpace>> Build(SiteId num_vertices,
                                                   const std::vector<Edge>& edges);

  double Distance(SiteId a, SiteId b) const override;
  SiteId num_sites() const override { return n_; }
  std::string Name() const override;

  /// Number of edges in the underlying graph.
  size_t num_edges() const { return num_edges_; }

 private:
  GraphSpace(SiteId n, size_t num_edges, std::vector<double> flat);

  SiteId n_;
  size_t num_edges_;
  std::vector<double> flat_;  // n_*n_ all-pairs shortest-path distances.
};

}  // namespace metric
}  // namespace ukc

#endif  // UKC_METRIC_GRAPH_SPACE_H_
