// Euclidean (and general normed R^d) metric space over an extensible
// point set.
//
// Coordinates live in ONE flat std::vector<double> arena (structure of
// arrays, row-major: site id s occupies [s*dim, (s+1)*dim)), so distance
// evaluations touch contiguous memory and never chase per-point heap
// blocks. Hot paths access sites through geometry::PointView / raw
// coordinate pointers; the boxed geometry::Point accessors materialize a
// copy and are for API boundaries only.

#ifndef UKC_METRIC_EUCLIDEAN_SPACE_H_
#define UKC_METRIC_EUCLIDEAN_SPACE_H_

#include <string>
#include <vector>

#include "geometry/point.h"
#include "geometry/point_view.h"
#include "metric/metric_space.h"

namespace ukc {
namespace metric {

/// Which norm induces the distance. The paper's Euclidean theorems rely
/// only on Lemma 3.1 (d(P̄,Q) ≤ E d(P,Q)), which holds for any norm, so
/// L1 and L∞ are provided for ablation studies.
enum class Norm {
  kL2,
  kL1,
  kLInf,
};

/// Returns a short name ("L2", ...) for a norm.
std::string NormToString(Norm norm);

/// Distance between two raw coordinate arrays under a norm.
inline double NormDistanceKernel(Norm norm, const double* a, const double* b,
                                 size_t dim) {
  switch (norm) {
    case Norm::kL2:
      return geometry::DistanceKernel(a, b, dim);
    case Norm::kL1:
      return geometry::L1DistanceKernel(a, b, dim);
    case Norm::kLInf:
      return geometry::LInfDistanceKernel(a, b, dim);
  }
  return 0.0;
}

/// A normed space R^d over a growable list of points. Sites may be
/// appended (never removed), so SiteIds remain stable; this is how
/// constructed points such as expected points enter the space.
class EuclideanSpace : public MetricSpace {
 public:
  /// An empty space of the given dimension.
  explicit EuclideanSpace(size_t dim, Norm norm = Norm::kL2);

  /// A space populated with the given points (all of dimension dim).
  EuclideanSpace(size_t dim, std::vector<geometry::Point> points,
                 Norm norm = Norm::kL2);

  double Distance(SiteId a, SiteId b) const override {
    return NormDistanceKernel(norm_, coords(a), coords(b), dim_);
  }
  SiteId num_sites() const override { return num_sites_; }
  std::string Name() const override;

  /// Flat scans over the coordinate arena (no per-pair virtual calls).
  double DistanceToSet(SiteId a,
                       const std::vector<SiteId>& candidates) const override;
  SiteId NearestInSet(SiteId a,
                      const std::vector<SiteId>& candidates) const override;

  /// Dimension of the ambient space.
  size_t dim() const { return dim_; }

  /// The norm in use.
  Norm norm() const { return norm_; }

  /// Appends a point and returns its new site id. The point's dimension
  /// must match the space.
  SiteId AddPoint(const geometry::Point& point);

  /// Appends a point given by a raw coordinate array of length dim().
  SiteId AddCoords(const double* data);

  /// Raw coordinates of a site (length dim()). Stable until AddPoint
  /// (the arena may reallocate on growth, like vector iterators).
  const double* coords(SiteId id) const {
    UKC_DCHECK(id >= 0);
    UKC_DCHECK_LT(static_cast<size_t>(id), static_cast<size_t>(num_sites_));
    return coords_.data() + static_cast<size_t>(id) * dim_;
  }

  /// Non-owning view of a site (same lifetime caveat as coords()).
  geometry::PointView view(SiteId id) const {
    return geometry::PointView(coords(id), dim_);
  }

  /// The whole arena (num_sites() * dim() doubles, row-major).
  const std::vector<double>& coord_arena() const { return coords_; }

  /// The point backing a site, materialized as an owning copy. Boundary
  /// use only; hot loops should use view()/coords().
  geometry::Point point(SiteId id) const { return view(id).ToPoint(); }

  /// Distance between a site and a free (unregistered) point.
  double DistanceToPoint(SiteId a, const geometry::Point& p) const {
    UKC_DCHECK_EQ(p.dim(), dim_);
    return NormDistanceKernel(norm_, coords(a), p.coords().data(), dim_);
  }

  /// Distance between two free points under this space's norm.
  double PointDistance(const geometry::Point& a,
                       const geometry::Point& b) const;

  /// Distance between two views under this space's norm.
  double ViewDistance(geometry::PointView a, geometry::PointView b) const {
    UKC_DCHECK_EQ(a.dim(), dim_);
    UKC_DCHECK_EQ(b.dim(), dim_);
    return NormDistanceKernel(norm_, a.data(), b.data(), dim_);
  }

  /// Copies the coordinates of `sites` into a contiguous row-major
  /// buffer (resized to sites.size() * dim()). Site ids are hard-checked
  /// (all build types). The gathered block is the standard prelude for
  /// solver loops over a site subset.
  void GatherCoords(const std::vector<SiteId>& sites,
                    std::vector<double>* out) const;

 private:
  /// Aborts on an out-of-range id (all build types; the flat scans
  /// validate once up front instead of per access).
  void CheckSite(SiteId id) const;
  size_t dim_;
  Norm norm_;
  SiteId num_sites_ = 0;
  std::vector<double> coords_;  // num_sites_ * dim_, row-major.
};

}  // namespace metric
}  // namespace ukc

#endif  // UKC_METRIC_EUCLIDEAN_SPACE_H_
