// Euclidean (and general normed R^d) metric space over an extensible
// point set.

#ifndef UKC_METRIC_EUCLIDEAN_SPACE_H_
#define UKC_METRIC_EUCLIDEAN_SPACE_H_

#include <string>
#include <vector>

#include "geometry/point.h"
#include "metric/metric_space.h"

namespace ukc {
namespace metric {

/// Which norm induces the distance. The paper's Euclidean theorems rely
/// only on Lemma 3.1 (d(P̄,Q) ≤ E d(P,Q)), which holds for any norm, so
/// L1 and L∞ are provided for ablation studies.
enum class Norm {
  kL2,
  kL1,
  kLInf,
};

/// Returns a short name ("L2", ...) for a norm.
std::string NormToString(Norm norm);

/// A normed space R^d over a growable list of points. Sites may be
/// appended (never removed), so SiteIds remain stable; this is how
/// constructed points such as expected points enter the space.
class EuclideanSpace : public MetricSpace {
 public:
  /// An empty space of the given dimension.
  explicit EuclideanSpace(size_t dim, Norm norm = Norm::kL2);

  /// A space populated with the given points (all of dimension dim).
  EuclideanSpace(size_t dim, std::vector<geometry::Point> points,
                 Norm norm = Norm::kL2);

  double Distance(SiteId a, SiteId b) const override;
  SiteId num_sites() const override {
    return static_cast<SiteId>(points_.size());
  }
  std::string Name() const override;

  /// Dimension of the ambient space.
  size_t dim() const { return dim_; }

  /// The norm in use.
  Norm norm() const { return norm_; }

  /// Appends a point and returns its new site id. The point's dimension
  /// must match the space.
  SiteId AddPoint(geometry::Point point);

  /// The point backing a site.
  const geometry::Point& point(SiteId id) const;

  /// All points (index == SiteId).
  const std::vector<geometry::Point>& points() const { return points_; }

  /// Distance between a site and a free (unregistered) point.
  double DistanceToPoint(SiteId a, const geometry::Point& p) const;

  /// Distance between two free points under this space's norm.
  double PointDistance(const geometry::Point& a, const geometry::Point& b) const;

 private:
  size_t dim_;
  Norm norm_;
  std::vector<geometry::Point> points_;
};

}  // namespace metric
}  // namespace ukc

#endif  // UKC_METRIC_EUCLIDEAN_SPACE_H_
