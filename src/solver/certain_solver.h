// Pluggable deterministic k-center solver — the "(1+eps)-approximation
// algorithm for the k-center problem of certain points" slot in every
// theorem of the paper. The uncertain pipeline (core/) is parameterized
// by this dispatcher, so each Table-1 row can plug in Gonzalez (factor
// 2, rows with O(nz + n log k) running time) or a stronger solver.

#ifndef UKC_SOLVER_CERTAIN_SOLVER_H_
#define UKC_SOLVER_CERTAIN_SOLVER_H_

#include <string>

#include "common/result.h"
#include "metric/metric_space.h"
#include "solver/types.h"

namespace ukc {

class ThreadPool;

namespace solver {

/// Available deterministic k-center algorithms.
enum class CertainSolverKind {
  /// Farthest-first traversal; factor 2; O(nk).
  kGonzalez,
  /// Threshold binary search; factor 2 (discrete); O(n^2 log n).
  kHochbaumShmoys,
  /// Gonzalez seed + alternating minimum-enclosing-ball refinement;
  /// factor 2 guaranteed, near-optimal in practice.
  kGonzalezRefined,
  /// Exact: subset enumeration over the sites (general metric) or
  /// partition enumeration with exact enclosing balls (Euclidean).
  /// Factor 1; tiny instances only.
  kExact,
  /// Grid-discretized (1+eps)-approximation (Euclidean only, small k):
  /// the paper's "(1+eps) algorithm for certain points" slot, usable
  /// beyond tiny instances. Factor 1 + epsilon.
  kGridEpsilon,
};

/// Returns a short stable name for a solver kind.
std::string CertainSolverKindToString(CertainSolverKind kind);

/// Options for SolveCertainKCenter.
struct CertainSolverOptions {
  CertainSolverKind kind = CertainSolverKind::kGonzalez;
  uint64_t seed = 11;
  /// Target eps for kGridEpsilon.
  double epsilon = 0.25;
  /// Budget caps forwarded to the exact solvers.
  uint64_t max_enumerations = 20'000'000;
  /// Borrowed shared worker pool, forwarded to the solvers that
  /// parallelize (currently kGonzalezRefined's refinement rounds).
  /// Null = each such solver constructs its own (see ScopedPool).
  ThreadPool* pool = nullptr;
};

/// Runs the selected algorithm on `sites` within `space`. The space is
/// non-const because Euclidean solvers mint constructed centers as new
/// sites. The returned approx_factor states the guarantee:
///  * kExact on a Euclidean space: 1 vs the continuous optimum;
///  * kExact on a finite metric: 1 vs the discrete optimum, which in a
///    finite space *is* the optimum;
///  * others: 2 vs the continuous optimum.
Result<KCenterSolution> SolveCertainKCenter(
    metric::MetricSpace* space, const std::vector<metric::SiteId>& sites,
    size_t k, const CertainSolverOptions& options = {});

}  // namespace solver
}  // namespace ukc

#endif  // UKC_SOLVER_CERTAIN_SOLVER_H_
