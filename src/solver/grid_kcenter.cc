#include "solver/grid_kcenter.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_set>

#include "common/strings.h"
#include "metric/euclidean_space.h"
#include "solver/gonzalez.h"

namespace ukc {
namespace solver {

using geometry::Point;

namespace {

// Bit-set helpers over vector<uint64_t>.
inline void SetBit(std::vector<uint64_t>* bits, size_t i) {
  (*bits)[i / 64] |= uint64_t{1} << (i % 64);
}
inline bool AllSet(const std::vector<uint64_t>& bits, size_t n) {
  for (size_t w = 0; w < bits.size(); ++w) {
    uint64_t expected = ~uint64_t{0};
    if ((w + 1) * 64 > n) {
      const size_t tail = n - w * 64;
      expected = tail == 64 ? ~uint64_t{0} : ((uint64_t{1} << tail) - 1);
    }
    if ((bits[w] & expected) != expected) return false;
  }
  return true;
}
inline bool TestBit(const std::vector<uint64_t>& bits, size_t i) {
  return (bits[i / 64] >> (i % 64)) & 1;
}

// One decision instance: candidate generation + bounded cover search.
class Decision {
 public:
  Decision(const std::vector<Point>& points, size_t k,
           const GridKCenterOptions& options)
      : points_(points), k_(k), options_(options) {}

  // Tries radius r with internal slack eps_prime; on success fills
  // `centers` with k (or fewer) candidate points of covering radius
  // <= r * (1 + eps_prime).
  Result<bool> Try(double r, double eps_prime, std::vector<Point>* centers) {
    const size_t dim = points_[0].dim();
    const double cell = eps_prime * r / std::sqrt(static_cast<double>(dim));
    const double reach = r * (1.0 + eps_prime / 2.0);  // Candidate radius.
    const double cover = r * (1.0 + eps_prime);        // Coverage radius.

    // Generate candidates: grid points within `reach` of any input
    // point, deduplicated by cell id.
    std::unordered_set<std::string> seen;
    std::vector<Point> candidates;
    std::vector<int64_t> lo(dim), hi(dim);
    for (const Point& p : points_) {
      for (size_t a = 0; a < dim; ++a) {
        lo[a] = static_cast<int64_t>(std::floor((p[a] - reach) / cell));
        hi[a] = static_cast<int64_t>(std::ceil((p[a] + reach) / cell));
      }
      std::vector<int64_t> index(lo);
      while (true) {
        Point g(dim);
        for (size_t a = 0; a < dim; ++a) {
          g[a] = static_cast<double>(index[a]) * cell;
        }
        if (geometry::Distance(g, p) <= reach) {
          std::string key;
          key.reserve(dim * 9);
          for (size_t a = 0; a < dim; ++a) {
            key.append(reinterpret_cast<const char*>(&index[a]),
                       sizeof(int64_t));
          }
          if (seen.insert(std::move(key)).second) {
            candidates.push_back(std::move(g));
            if (candidates.size() > options_.max_candidates) {
              return Status::InvalidArgument(
                  StrFormat("GridKCenter: more than %zu candidates at r=%g; "
                            "increase eps or use another solver",
                            options_.max_candidates, r));
            }
          }
        }
        // Odometer over the cell box.
        size_t a = 0;
        for (; a < dim; ++a) {
          if (++index[a] <= hi[a]) break;
          index[a] = lo[a];
        }
        if (a == dim) break;
      }
    }

    // coverage[c]: bitmask of points candidate c covers at `cover`.
    const size_t words = (points_.size() + 63) / 64;
    std::vector<std::vector<uint64_t>> coverage(
        candidates.size(), std::vector<uint64_t>(words, 0));
    for (size_t c = 0; c < candidates.size(); ++c) {
      for (size_t i = 0; i < points_.size(); ++i) {
        if (geometry::Distance(candidates[c], points_[i]) <= cover) {
          SetBit(&coverage[c], i);
        }
      }
    }
    // Candidates with identical coverage are interchangeable: keep one
    // representative per mask. This collapses the branching factor from
    // "grid points per ball" to "distinct coverage patterns".
    {
      std::unordered_set<std::string> masks;
      std::vector<Point> unique_candidates;
      std::vector<std::vector<uint64_t>> unique_coverage;
      for (size_t c = 0; c < candidates.size(); ++c) {
        std::string key(reinterpret_cast<const char*>(coverage[c].data()),
                        words * sizeof(uint64_t));
        if (masks.insert(std::move(key)).second) {
          unique_candidates.push_back(std::move(candidates[c]));
          unique_coverage.push_back(std::move(coverage[c]));
        }
      }
      candidates = std::move(unique_candidates);
      coverage = std::move(unique_coverage);
    }
    // coverers[i]: candidates that can cover point i.
    std::vector<std::vector<uint32_t>> coverers(points_.size());
    for (size_t c = 0; c < candidates.size(); ++c) {
      for (size_t i = 0; i < points_.size(); ++i) {
        if (TestBit(coverage[c], i)) {
          coverers[i].push_back(static_cast<uint32_t>(c));
        }
      }
    }
    for (const auto& list : coverers) {
      if (list.empty()) return false;  // Some point is uncoverable.
    }

    // Branch and bound: always branch on the uncovered point with the
    // fewest coverers.
    nodes_ = 0;
    chosen_.clear();
    visited_.clear();
    std::vector<uint64_t> covered(words, 0);
    UKC_ASSIGN_OR_RETURN(const bool found,
                         Search(candidates, coverage, coverers, covered, 0));
    if (!found) return false;
    centers->clear();
    for (uint32_t c : chosen_) centers->push_back(candidates[c]);
    return true;
  }

 private:
  Result<bool> Search(const std::vector<Point>& candidates,
                      const std::vector<std::vector<uint64_t>>& coverage,
                      const std::vector<std::vector<uint32_t>>& coverers,
                      const std::vector<uint64_t>& covered, size_t depth) {
    if (++nodes_ > options_.max_nodes) {
      return Status::InvalidArgument(
          "GridKCenter: branch-and-bound node cap exceeded; increase eps or "
          "reduce k");
    }
    if (AllSet(covered, points_.size())) return true;
    if (depth == k_) return false;

    // Memoize failed states: the same covered-set at the same depth
    // always fails the same way.
    std::string state(reinterpret_cast<const char*>(covered.data()),
                      covered.size() * sizeof(uint64_t));
    state.push_back(static_cast<char>(depth));
    if (!visited_.insert(state).second) return false;

    // Most-constrained uncovered point.
    size_t pick = points_.size();
    size_t fewest = std::numeric_limits<size_t>::max();
    for (size_t i = 0; i < points_.size(); ++i) {
      if (TestBit(covered, i)) continue;
      if (coverers[i].size() < fewest) {
        fewest = coverers[i].size();
        pick = i;
      }
    }
    UKC_CHECK_LT(pick, points_.size());

    // Only maximal residual coverers matter: if candidate a's uncovered
    // gain is a subset of candidate b's, trying b first subsumes a.
    struct Option {
      uint32_t candidate;
      std::vector<uint64_t> next;  // covered | coverage[candidate].
      int gain;                    // popcount of the residual.
    };
    std::vector<Option> options_list;
    options_list.reserve(coverers[pick].size());
    for (uint32_t c : coverers[pick]) {
      Option option;
      option.candidate = c;
      option.next.resize(covered.size());
      option.gain = 0;
      for (size_t w = 0; w < covered.size(); ++w) {
        option.next[w] = covered[w] | coverage[c][w];
        option.gain += __builtin_popcountll(coverage[c][w] & ~covered[w]);
      }
      options_list.push_back(std::move(option));
    }
    std::sort(options_list.begin(), options_list.end(),
              [](const Option& a, const Option& b) { return a.gain > b.gain; });
    std::vector<const Option*> maximal;
    for (const Option& option : options_list) {
      bool dominated = false;
      for (const Option* kept : maximal) {
        // option.next subset of kept->next?
        bool subset = true;
        for (size_t w = 0; w < covered.size() && subset; ++w) {
          subset = (option.next[w] | kept->next[w]) == kept->next[w];
        }
        if (subset) {
          dominated = true;
          break;
        }
      }
      if (!dominated) maximal.push_back(&option);
    }

    for (const Option* option : maximal) {
      chosen_.push_back(option->candidate);
      UKC_ASSIGN_OR_RETURN(const bool found,
                           Search(candidates, coverage, coverers, option->next,
                                  depth + 1));
      if (found) return true;
      chosen_.pop_back();
    }
    return false;
  }

  const std::vector<Point>& points_;
  const size_t k_;
  const GridKCenterOptions& options_;
  uint64_t nodes_ = 0;
  std::vector<uint32_t> chosen_;
  std::unordered_set<std::string> visited_;
};

}  // namespace

Result<ContinuousKCenterSolution> GridKCenter(const std::vector<Point>& points,
                                              size_t k,
                                              const GridKCenterOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("GridKCenter: no points");
  }
  if (k == 0) return Status::InvalidArgument("GridKCenter: k must be >= 1");
  if (!(options.eps > 0.0) || options.eps > 1.0) {
    return Status::InvalidArgument("GridKCenter: eps must be in (0, 1]");
  }
  const size_t dim = points[0].dim();
  for (const Point& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("GridKCenter: mixed dimensions");
    }
  }

  // Gonzalez bracket: opt in [r_g / 2, r_g].
  metric::EuclideanSpace space(dim, points);
  std::vector<metric::SiteId> sites(points.size());
  for (size_t i = 0; i < sites.size(); ++i) {
    sites[i] = static_cast<metric::SiteId>(i);
  }
  UKC_ASSIGN_OR_RETURN(KCenterSolution greedy, Gonzalez(space, sites, k));
  ContinuousKCenterSolution solution;
  if (greedy.radius <= 0.0) {
    // k >= #distinct points: the greedy centers are exact.
    for (metric::SiteId c : greedy.centers) {
      solution.centers.push_back(space.point(c));
    }
    solution.radius = 0.0;
    solution.cluster_of.resize(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      size_t best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < solution.centers.size(); ++c) {
        const double d = geometry::Distance(points[i], solution.centers[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      solution.cluster_of[i] = best;
    }
    return solution;
  }

  // Internal parameters chosen so the end-to-end factor is 1 + eps:
  // (1 + eps') * (1 + 2 delta) <= 1 + eps with eps' = eps/2 and
  // delta = eps/8 (using r_g <= 2 opt).
  const double eps_prime = options.eps / 2.0;
  const double delta = options.eps / 8.0;

  Decision decision(points, k, options);
  double lo = greedy.radius / 2.0;
  double hi = greedy.radius;
  std::vector<Point> best_centers;
  UKC_ASSIGN_OR_RETURN(const bool top_feasible,
                       decision.Try(hi, eps_prime, &best_centers));
  if (!top_feasible) {
    return Status::Internal("GridKCenter: Gonzalez radius infeasible");
  }
  while (hi - lo > delta * greedy.radius) {
    const double mid = (lo + hi) / 2.0;
    std::vector<Point> centers;
    UKC_ASSIGN_OR_RETURN(const bool feasible,
                         decision.Try(mid, eps_prime, &centers));
    if (feasible) {
      hi = mid;
      best_centers = std::move(centers);
    } else {
      lo = mid;
    }
  }

  solution.centers = std::move(best_centers);
  solution.cluster_of.resize(points.size());
  solution.radius = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < solution.centers.size(); ++c) {
      const double d = geometry::Distance(points[i], solution.centers[c]);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    solution.cluster_of[i] = best;
    solution.radius = std::max(solution.radius, best_d);
  }
  return solution;
}

}  // namespace solver
}  // namespace ukc
