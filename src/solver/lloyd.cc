#include "solver/lloyd.h"

#include <algorithm>
#include <limits>

namespace ukc {
namespace solver {

using geometry::Point;

namespace {

// k-means++ seeding: first center weighted by w, subsequent centers
// weighted by w_i * D(p_i)^2.
std::vector<Point> SeedPlusPlus(const std::vector<Point>& points,
                                const std::vector<double>& weights, size_t k,
                                Rng& rng) {
  std::vector<Point> centers;
  centers.reserve(k);
  std::vector<double> d2(points.size(),
                         std::numeric_limits<double>::infinity());
  centers.push_back(points[rng.Discrete(weights)]);
  while (centers.size() < k) {
    std::vector<double> scores(points.size());
    double total = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], geometry::SquaredDistance(points[i], centers.back()));
      scores[i] = weights[i] * d2[i];
      total += scores[i];
    }
    if (total <= 0.0) {
      // All points coincide with chosen centers; duplicate any.
      centers.push_back(points[0]);
      continue;
    }
    centers.push_back(points[rng.Discrete(scores)]);
  }
  return centers;
}

double AssignAll(const std::vector<Point>& points,
                 const std::vector<double>& weights,
                 const std::vector<Point>& centers,
                 std::vector<size_t>* cluster_of) {
  double objective = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    size_t best = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centers.size(); ++c) {
      const double d2 = geometry::SquaredDistance(points[i], centers[c]);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = c;
      }
    }
    (*cluster_of)[i] = best;
    objective += weights[i] * best_d2;
  }
  return objective;
}

}  // namespace

Result<KMeansSolution> WeightedKMeans(const std::vector<Point>& points,
                                      const std::vector<double>& weights,
                                      size_t k, const KMeansOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("WeightedKMeans: no points");
  }
  if (points.size() != weights.size()) {
    return Status::InvalidArgument("WeightedKMeans: points/weights mismatch");
  }
  if (k == 0) return Status::InvalidArgument("WeightedKMeans: k must be >= 1");
  const size_t dim = points[0].dim();
  for (const Point& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("WeightedKMeans: mixed dimensions");
    }
  }
  for (double w : weights) {
    if (!(w > 0.0)) {
      return Status::InvalidArgument("WeightedKMeans: weights must be positive");
    }
  }

  Rng rng(options.seed);
  KMeansSolution best;
  best.objective = std::numeric_limits<double>::infinity();
  const size_t restarts = std::max<size_t>(1, options.restarts);
  for (size_t restart = 0; restart < restarts; ++restart) {
    KMeansSolution run;
    run.centers = SeedPlusPlus(points, weights, k, rng);
    run.cluster_of.assign(points.size(), 0);
    run.objective = AssignAll(points, weights, run.centers, &run.cluster_of);
    for (run.iterations = 0; run.iterations < options.max_iterations;
         ++run.iterations) {
      // Recenter: weighted centroid per cluster.
      std::vector<Point> sums(run.centers.size(), Point(dim));
      std::vector<double> mass(run.centers.size(), 0.0);
      for (size_t i = 0; i < points.size(); ++i) {
        sums[run.cluster_of[i]] += points[i] * weights[i];
        mass[run.cluster_of[i]] += weights[i];
      }
      for (size_t c = 0; c < run.centers.size(); ++c) {
        if (mass[c] > 0.0) run.centers[c] = sums[c] * (1.0 / mass[c]);
        // Empty clusters keep their center in place.
      }
      const double objective =
          AssignAll(points, weights, run.centers, &run.cluster_of);
      const double improvement = run.objective - objective;
      run.objective = objective;
      if (improvement <
          options.min_relative_improvement * std::max(1.0, run.objective)) {
        break;
      }
    }
    if (run.objective < best.objective) best = std::move(run);
  }
  return best;
}

}  // namespace solver
}  // namespace ukc
