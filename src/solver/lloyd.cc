#include "solver/lloyd.h"

#include <algorithm>
#include <limits>

#include "geometry/point_view.h"

namespace ukc {
namespace solver {

using geometry::Point;

namespace {

// The Lloyd inner loops run over flat row-major buffers: `coords` holds
// the input points, `centers` the current centers, both contiguous.

// k-means++ seeding: first center weighted by w, subsequent centers
// weighted by w_i * D(p_i)^2. Appends k centers to `centers`.
void SeedPlusPlus(const double* coords, size_t count, size_t dim,
                  const std::vector<double>& weights, size_t k, Rng& rng,
                  std::vector<double>* centers) {
  centers->clear();
  centers->reserve(k * dim);
  std::vector<double> d2(count, std::numeric_limits<double>::infinity());
  std::vector<double> scores(count);
  size_t chosen = rng.Discrete(weights);
  centers->insert(centers->end(), coords + chosen * dim,
                  coords + (chosen + 1) * dim);
  while (centers->size() < k * dim) {
    const double* last = centers->data() + centers->size() - dim;
    double total = 0.0;
    for (size_t i = 0; i < count; ++i) {
      d2[i] = std::min(
          d2[i], geometry::SquaredDistanceKernel(coords + i * dim, last, dim));
      scores[i] = weights[i] * d2[i];
      total += scores[i];
    }
    if (total <= 0.0) {
      // All points coincide with chosen centers; duplicate any.
      chosen = 0;
    } else {
      chosen = rng.Discrete(scores);
    }
    centers->insert(centers->end(), coords + chosen * dim,
                    coords + (chosen + 1) * dim);
  }
}

double AssignAll(const double* coords, size_t count, size_t dim,
                 const double* weights, const std::vector<double>& centers,
                 size_t k, std::vector<size_t>* cluster_of) {
  double objective = 0.0;
  for (size_t i = 0; i < count; ++i) {
    const double* p = coords + i * dim;
    size_t best = 0;
    double best_d2 = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      const double d2 =
          geometry::SquaredDistanceKernel(p, centers.data() + c * dim, dim);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = c;
      }
    }
    (*cluster_of)[i] = best;
    objective += weights[i] * best_d2;
  }
  return objective;
}

}  // namespace

Result<KMeansFlatSolution> WeightedKMeansFlat(std::span<const double> flat,
                                              size_t count, size_t dim,
                                              std::span<const double> weight_span,
                                              size_t k,
                                              const KMeansOptions& options) {
  if (count == 0) {
    return Status::InvalidArgument("WeightedKMeans: no points");
  }
  if (dim == 0 || flat.size() != count * dim) {
    return Status::InvalidArgument(
        "WeightedKMeans: coords must hold count rows of dim");
  }
  if (count != weight_span.size()) {
    return Status::InvalidArgument("WeightedKMeans: points/weights mismatch");
  }
  if (k == 0) return Status::InvalidArgument("WeightedKMeans: k must be >= 1");
  for (double w : weight_span) {
    if (!(w > 0.0)) {
      return Status::InvalidArgument("WeightedKMeans: weights must be positive");
    }
  }
  const double* coords = flat.data();
  // Rng::Discrete wants a vector; the weights are the one copied input.
  const std::vector<double> weights(weight_span.begin(), weight_span.end());

  Rng rng(options.seed);
  // Flat working state for the best run and the current run.
  std::vector<double> best_centers;
  std::vector<size_t> best_cluster_of;
  double best_objective = std::numeric_limits<double>::infinity();
  size_t best_iterations = 0;

  std::vector<double> centers;
  std::vector<size_t> cluster_of(count, 0);
  std::vector<double> sums;
  std::vector<double> mass;

  const size_t restarts = std::max<size_t>(1, options.restarts);
  for (size_t restart = 0; restart < restarts; ++restart) {
    SeedPlusPlus(coords, count, dim, weights, k, rng, &centers);
    std::fill(cluster_of.begin(), cluster_of.end(), 0);
    double objective =
        AssignAll(coords, count, dim, weights.data(), centers, k, &cluster_of);
    size_t iterations = 0;
    for (; iterations < options.max_iterations; ++iterations) {
      // Recenter: weighted centroid per cluster.
      sums.assign(k * dim, 0.0);
      mass.assign(k, 0.0);
      for (size_t i = 0; i < count; ++i) {
        const double* p = coords + i * dim;
        double* sum = sums.data() + cluster_of[i] * dim;
        for (size_t a = 0; a < dim; ++a) sum[a] += p[a] * weights[i];
        mass[cluster_of[i]] += weights[i];
      }
      for (size_t c = 0; c < k; ++c) {
        if (mass[c] > 0.0) {
          const double inverse = 1.0 / mass[c];
          for (size_t a = 0; a < dim; ++a) {
            centers[c * dim + a] = sums[c * dim + a] * inverse;
          }
        }
        // Empty clusters keep their center in place.
      }
      const double next =
          AssignAll(coords, count, dim, weights.data(), centers, k, &cluster_of);
      const double improvement = objective - next;
      objective = next;
      if (improvement <
          options.min_relative_improvement * std::max(1.0, objective)) {
        break;
      }
    }
    if (objective < best_objective) {
      best_objective = objective;
      best_centers = centers;
      best_cluster_of = cluster_of;
      best_iterations = iterations;
    }
  }

  KMeansFlatSolution best;
  best.objective = best_objective;
  best.iterations = best_iterations;
  best.cluster_of = std::move(best_cluster_of);
  best.centers = std::move(best_centers);
  return best;
}

Result<KMeansSolution> WeightedKMeans(const std::vector<Point>& points,
                                      const std::vector<double>& weights,
                                      size_t k, const KMeansOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("WeightedKMeans: no points");
  }
  const size_t dim = points[0].dim();
  std::vector<double> coords;
  coords.reserve(points.size() * dim);
  for (const Point& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("WeightedKMeans: mixed dimensions");
    }
    coords.insert(coords.end(), p.coords().begin(), p.coords().end());
  }
  UKC_ASSIGN_OR_RETURN(
      KMeansFlatSolution flat,
      WeightedKMeansFlat(coords, points.size(), dim, weights, k, options));
  KMeansSolution best;
  best.objective = flat.objective;
  best.iterations = flat.iterations;
  best.cluster_of = std::move(flat.cluster_of);
  best.centers.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    best.centers.push_back(
        geometry::PointView(flat.centers.data() + c * dim, dim).ToPoint());
  }
  return best;
}

}  // namespace solver
}  // namespace ukc
