// Weighted geometric median (Fermat–Weber point) by Weiszfeld iteration
// with the Vardi–Zhang fix at anchor points.
//
// For a single uncertain point P in Euclidean space, the point
// minimizing the expected distance E[d(P̂, q)] = Σ p_j d(P_j, q) is
// exactly the probability-weighted geometric median of its locations —
// the paper's P̃ (the "1-center of the single uncertain point") in the
// Euclidean case. It is used by the ablation benches comparing P̄
// (expected point) against P̃ as the surrogate.

#ifndef UKC_SOLVER_GEOMETRIC_MEDIAN_H_
#define UKC_SOLVER_GEOMETRIC_MEDIAN_H_

#include <vector>

#include "common/result.h"
#include "geometry/point.h"

namespace ukc {
namespace solver {

/// Options for the Weiszfeld iteration.
struct GeometricMedianOptions {
  size_t max_iterations = 1000;
  /// Convergence threshold on the step size, relative to the points'
  /// bounding-box diagonal.
  double relative_tolerance = 1e-10;
};

/// Result: the (near-)optimal point and its weighted-distance objective.
struct GeometricMedianResult {
  geometry::Point median;
  /// Σ w_i d(p_i, median).
  double objective = 0.0;
  size_t iterations = 0;
  bool converged = false;
};

/// Minimizes Σ w_i d(p_i, q) over q in R^d. Weights must be positive;
/// points must be non-empty and of uniform dimension. The objective is
/// convex, and Weiszfeld converges to the global optimum; accuracy is
/// bounded by the tolerance, not a constant factor.
Result<GeometricMedianResult> WeightedGeometricMedian(
    const std::vector<geometry::Point>& points,
    const std::vector<double>& weights, const GeometricMedianOptions& options = {});

/// Same, over a flat row-major coordinate buffer (`count` points of
/// dimension `dim`). The allocation-free core: the iteration touches
/// only the caller's buffers plus O(dim) scratch. Preferred for hot
/// paths (surrogate construction reads the arena directly).
Result<GeometricMedianResult> WeightedGeometricMedianFlat(
    const double* coords, size_t count, size_t dim, const double* weights,
    const GeometricMedianOptions& options = {});

}  // namespace solver
}  // namespace ukc

#endif  // UKC_SOLVER_GEOMETRIC_MEDIAN_H_
