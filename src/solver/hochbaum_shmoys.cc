#include "solver/hochbaum_shmoys.h"

#include <algorithm>
#include <vector>

#include "metric/euclidean_space.h"

namespace ukc {
namespace solver {

namespace {

// Pairwise-distance oracle over positions into `sites`. For Euclidean
// spaces the site coordinates are gathered once into a flat block so the
// O(n^2) threshold enumeration and the greedy covers run over contiguous
// memory; other metrics fall back to the virtual distance.
class PairOracle {
 public:
  PairOracle(const metric::MetricSpace& space,
             const std::vector<metric::SiteId>& sites)
      : space_(space), sites_(sites) {
    const auto* euclidean =
        dynamic_cast<const metric::EuclideanSpace*>(&space);
    if (euclidean != nullptr) {
      euclidean->GatherCoords(sites, &coords_);
      dim_ = euclidean->dim();
      norm_ = euclidean->norm();
      flat_ = true;
    }
  }

  double operator()(size_t i, size_t j) const {
    if (flat_) {
      return metric::NormDistanceKernel(norm_, coords_.data() + i * dim_,
                                        coords_.data() + j * dim_, dim_);
    }
    return space_.Distance(sites_[i], sites_[j]);
  }

 private:
  const metric::MetricSpace& space_;
  const std::vector<metric::SiteId>& sites_;
  std::vector<double> coords_;
  size_t dim_ = 0;
  metric::Norm norm_ = metric::Norm::kL2;
  bool flat_ = false;
};

// Greedy cover at threshold t: repeatedly pick the first uncovered site
// as a center and cover everything within 2t of it. Returns the chosen
// centers. Any two chosen centers are > 2t apart, which is what powers
// both the 2-approximation and the lower-bound certificate.
std::vector<metric::SiteId> GreedyCover(const PairOracle& distance,
                                        const std::vector<metric::SiteId>& sites,
                                        double t, size_t stop_after) {
  std::vector<bool> covered(sites.size(), false);
  std::vector<metric::SiteId> centers;
  for (size_t i = 0; i < sites.size(); ++i) {
    if (covered[i]) continue;
    centers.push_back(sites[i]);
    if (centers.size() > stop_after) break;  // Already infeasible.
    for (size_t j = i; j < sites.size(); ++j) {
      if (!covered[j] && distance(i, j) <= 2.0 * t) {
        covered[j] = true;
      }
    }
  }
  return centers;
}

}  // namespace

Result<ThresholdSolution> HochbaumShmoys(const metric::MetricSpace& space,
                                         const std::vector<metric::SiteId>& sites,
                                         size_t k) {
  if (k == 0) return Status::InvalidArgument("HochbaumShmoys: k must be >= 1");
  if (sites.empty()) return Status::InvalidArgument("HochbaumShmoys: no sites");

  const PairOracle distance(space, sites);

  // All distinct pairwise distances, ascending, 0 prepended so that the
  // degenerate all-coincident case works.
  std::vector<double> thresholds;
  thresholds.reserve(sites.size() * (sites.size() - 1) / 2 + 1);
  thresholds.push_back(0.0);
  for (size_t i = 0; i < sites.size(); ++i) {
    for (size_t j = i + 1; j < sites.size(); ++j) {
      thresholds.push_back(distance(i, j));
    }
  }
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());

  // Binary search for the smallest feasible threshold.
  size_t lo = 0;                     // Unknown.
  size_t hi = thresholds.size() - 1; // Always feasible: 2*d_max covers all.
  auto feasible = [&](size_t index) {
    return GreedyCover(distance, sites, thresholds[index], k).size() <= k;
  };
  if (!feasible(hi)) {
    return Status::Internal("HochbaumShmoys: maximal threshold infeasible");
  }
  if (feasible(lo)) {
    hi = lo;
  } else {
    while (hi - lo > 1) {
      const size_t mid = lo + (hi - lo) / 2;
      (feasible(mid) ? hi : lo) = mid;
    }
  }

  ThresholdSolution out;
  out.solution.centers = GreedyCover(distance, sites, thresholds[hi], k);
  out.solution.radius = CoveringRadius(space, sites, out.solution.centers);
  out.solution.approx_factor = 2.0;
  out.solution.algorithm = "hochbaum-shmoys";
  out.lower_bound = hi == 0 ? 0.0 : thresholds[hi];
  out.continuous_lower_bound = hi == 0 ? 0.0 : thresholds[hi - 1];
  return out;
}

}  // namespace solver
}  // namespace ukc
