#include "solver/brute_force.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/strings.h"

namespace ukc {
namespace solver {

uint64_t BinomialCount(uint64_t m, uint64_t k) {
  if (k > m) return 0;
  k = std::min(k, m - k);
  uint64_t result = 1;
  for (uint64_t i = 1; i <= k; ++i) {
    const uint64_t numerator = m - k + i;
    // result * numerator may overflow; saturate.
    if (result > std::numeric_limits<uint64_t>::max() / numerator) {
      return std::numeric_limits<uint64_t>::max();
    }
    result = result * numerator / i;
  }
  return result;
}

void CombinationFromRank(uint64_t rank, uint64_t m, uint64_t k,
                         std::vector<size_t>* out) {
  UKC_CHECK(out != nullptr);
  UKC_CHECK(k >= 1 && k <= m);
  UKC_CHECK_LT(rank, BinomialCount(m, k));
  out->resize(k);
  // Position i takes the smallest value a (above the previous position)
  // whose block of C(m-1-a, k-1-i) completions still contains `rank`.
  uint64_t a = 0;
  for (uint64_t i = 0; i < k; ++i) {
    while (true) {
      const uint64_t block = BinomialCount(m - 1 - a, k - 1 - i);
      if (rank < block) break;
      rank -= block;
      ++a;
    }
    (*out)[i] = static_cast<size_t>(a);
    ++a;
  }
}

bool NextCombination(std::vector<size_t>* index, size_t m) {
  std::vector<size_t>& idx = *index;
  const size_t k = idx.size();
  size_t i = k;
  while (i-- > 0) {
    if (idx[i] + (k - i) < m) {
      ++idx[i];
      for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
      return true;
    }
  }
  return false;
}

namespace {

// Depth-first enumeration of k-subsets of candidates with pruning: a
// prefix is abandoned once even the *best possible* completion cannot
// beat the incumbent. For pruning we track, per site, the distance to
// the nearest already-chosen center; sites whose distance to every
// remaining candidate exceeds the incumbent make the prefix hopeless.
class SubsetSearch {
 public:
  SubsetSearch(const metric::MetricSpace& space,
               const std::vector<metric::SiteId>& sites,
               const std::vector<metric::SiteId>& candidates, size_t k)
      : space_(space), sites_(sites), candidates_(candidates), k_(k) {
    // Precompute the site-candidate distance matrix once: the search
    // probes it heavily.
    distance_.resize(sites.size());
    for (size_t s = 0; s < sites.size(); ++s) {
      distance_[s].resize(candidates.size());
      for (size_t c = 0; c < candidates.size(); ++c) {
        distance_[s][c] = space.Distance(sites[s], candidates[c]);
      }
    }
    // A site's distance to its nearest candidate lower-bounds every
    // completion, so the max over sites lower-bounds the optimum.
    floor_ = 0.0;
    for (size_t s = 0; s < sites.size(); ++s) {
      double nearest = std::numeric_limits<double>::infinity();
      for (size_t c = 0; c < candidates.size(); ++c) {
        nearest = std::min(nearest, distance_[s][c]);
      }
      floor_ = std::max(floor_, nearest);
    }
  }

  KCenterSolution Run() {
    best_radius_ = std::numeric_limits<double>::infinity();
    std::vector<size_t> chosen;
    std::vector<double> nearest(sites_.size(),
                                std::numeric_limits<double>::infinity());
    Recurse(0, &chosen, nearest);
    KCenterSolution solution;
    solution.algorithm = "exact-discrete";
    solution.approx_factor = 1.0;
    solution.radius = best_radius_;
    solution.centers.reserve(best_.size());
    for (size_t c : best_) solution.centers.push_back(candidates_[c]);
    return solution;
  }

 private:
  void Recurse(size_t first, std::vector<size_t>* chosen,
               const std::vector<double>& nearest) {
    if (chosen->size() == k_) {
      double radius = 0.0;
      for (double d : nearest) radius = std::max(radius, d);
      if (radius < best_radius_) {
        best_radius_ = radius;
        best_ = *chosen;
      }
      return;
    }
    const size_t remaining = k_ - chosen->size();
    // c + remaining <= |candidates| keeps enough candidates to finish.
    for (size_t c = first; c + remaining <= candidates_.size(); ++c) {
      // Relax distances with candidate c.
      std::vector<double> relaxed(nearest);
      for (size_t s = 0; s < sites_.size(); ++s) {
        relaxed[s] = std::min(relaxed[s], distance_[s][c]);
      }
      // Prune: a site that neither the chosen centers nor any remaining
      // candidate can bring under the incumbent dooms this branch.
      bool hopeless = false;
      for (size_t s = 0; s < sites_.size() && !hopeless; ++s) {
        if (relaxed[s] < best_radius_) continue;
        bool rescuable = false;
        for (size_t c2 = c + 1; c2 < candidates_.size() && remaining > 1; ++c2) {
          if (distance_[s][c2] < best_radius_) {
            rescuable = true;
            break;
          }
        }
        hopeless = !rescuable;
      }
      if (hopeless) continue;
      chosen->push_back(c);
      Recurse(c + 1, chosen, relaxed);
      chosen->pop_back();
      // Early exit at the information-theoretic floor.
      if (best_radius_ <= floor_) return;
    }
  }

  const metric::MetricSpace& space_;
  const std::vector<metric::SiteId>& sites_;
  const std::vector<metric::SiteId>& candidates_;
  const size_t k_;
  std::vector<std::vector<double>> distance_;
  double floor_ = 0.0;
  double best_radius_ = 0.0;
  std::vector<size_t> best_;
};

}  // namespace

Result<KCenterSolution> ExactDiscreteKCenter(
    const metric::MetricSpace& space, const std::vector<metric::SiteId>& sites,
    const std::vector<metric::SiteId>& candidates, size_t k,
    const BruteForceOptions& options) {
  if (k == 0) {
    return Status::InvalidArgument("ExactDiscreteKCenter: k must be >= 1");
  }
  if (sites.empty() || candidates.empty()) {
    return Status::InvalidArgument(
        "ExactDiscreteKCenter: sites and candidates must be non-empty");
  }
  if (k > candidates.size()) {
    // Choosing all candidates is optimal; no enumeration needed.
    KCenterSolution solution;
    solution.algorithm = "exact-discrete";
    solution.approx_factor = 1.0;
    solution.centers = candidates;
    solution.radius = CoveringRadius(space, sites, candidates);
    return solution;
  }
  const uint64_t subsets = BinomialCount(candidates.size(), k);
  if (subsets > options.max_subsets) {
    return Status::InvalidArgument(
        StrFormat("ExactDiscreteKCenter: C(%zu,%zu)=%llu subsets exceeds the "
                  "limit %llu",
                  candidates.size(), k,
                  static_cast<unsigned long long>(subsets),
                  static_cast<unsigned long long>(options.max_subsets)));
  }
  SubsetSearch search(space, sites, candidates, k);
  return search.Run();
}

}  // namespace solver
}  // namespace ukc
