#include "solver/certain_solver.h"

#include "metric/euclidean_space.h"
#include "solver/brute_force.h"
#include "solver/gonzalez.h"
#include "solver/hochbaum_shmoys.h"
#include "solver/grid_kcenter.h"
#include "solver/partition_exact.h"
#include "solver/refine.h"

namespace ukc {
namespace solver {

std::string CertainSolverKindToString(CertainSolverKind kind) {
  switch (kind) {
    case CertainSolverKind::kGonzalez:
      return "gonzalez";
    case CertainSolverKind::kHochbaumShmoys:
      return "hochbaum-shmoys";
    case CertainSolverKind::kGonzalezRefined:
      return "gonzalez-refined";
    case CertainSolverKind::kExact:
      return "exact";
    case CertainSolverKind::kGridEpsilon:
      return "grid-epsilon";
  }
  return "?";
}

Result<KCenterSolution> SolveCertainKCenter(
    metric::MetricSpace* space, const std::vector<metric::SiteId>& sites,
    size_t k, const CertainSolverOptions& options) {
  if (space == nullptr) {
    return Status::InvalidArgument("SolveCertainKCenter: null space");
  }
  switch (options.kind) {
    case CertainSolverKind::kGonzalez:
      return Gonzalez(*space, sites, k);
    case CertainSolverKind::kHochbaumShmoys: {
      UKC_ASSIGN_OR_RETURN(ThresholdSolution threshold,
                           HochbaumShmoys(*space, sites, k));
      return threshold.solution;
    }
    case CertainSolverKind::kGonzalezRefined: {
      UKC_ASSIGN_OR_RETURN(KCenterSolution seed, Gonzalez(*space, sites, k));
      RefineOptions refine_options;
      refine_options.seed = options.seed;
      refine_options.pool = options.pool;
      return RefineKCenter(space, sites, seed, refine_options);
    }
    case CertainSolverKind::kExact: {
      auto* euclidean = dynamic_cast<metric::EuclideanSpace*>(space);
      if (euclidean != nullptr) {
        std::vector<geometry::Point> points;
        points.reserve(sites.size());
        for (metric::SiteId s : sites) points.push_back(euclidean->point(s));
        PartitionExactOptions exact_options;
        exact_options.max_partitions = options.max_enumerations;
        exact_options.seed = options.seed;
        UKC_ASSIGN_OR_RETURN(ContinuousKCenterSolution continuous,
                             ExactPartitionKCenter(points, k, exact_options));
        KCenterSolution solution;
        solution.algorithm = "exact-partition";
        solution.approx_factor = 1.0;
        solution.radius = continuous.radius;
        solution.centers.reserve(continuous.centers.size());
        for (auto& center : continuous.centers) {
          solution.centers.push_back(euclidean->AddPoint(std::move(center)));
        }
        return solution;
      }
      BruteForceOptions brute_options;
      brute_options.max_subsets = options.max_enumerations;
      return ExactDiscreteKCenter(*space, sites, sites, k, brute_options);
    }
    case CertainSolverKind::kGridEpsilon: {
      auto* euclidean = dynamic_cast<metric::EuclideanSpace*>(space);
      if (euclidean == nullptr) {
        return Status::InvalidArgument(
            "SolveCertainKCenter: kGridEpsilon requires a Euclidean space");
      }
      std::vector<geometry::Point> points;
      points.reserve(sites.size());
      for (metric::SiteId s : sites) points.push_back(euclidean->point(s));
      GridKCenterOptions grid_options;
      grid_options.eps = options.epsilon;
      UKC_ASSIGN_OR_RETURN(ContinuousKCenterSolution continuous,
                           GridKCenter(points, k, grid_options));
      KCenterSolution solution;
      solution.algorithm = "grid-epsilon";
      solution.approx_factor = 1.0 + options.epsilon;
      solution.radius = continuous.radius;
      solution.centers.reserve(continuous.centers.size());
      for (auto& center : continuous.centers) {
        solution.centers.push_back(euclidean->AddPoint(std::move(center)));
      }
      return solution;
    }
  }
  return Status::Internal("SolveCertainKCenter: unknown solver kind");
}

}  // namespace solver
}  // namespace ukc
