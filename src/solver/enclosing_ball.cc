#include "solver/enclosing_ball.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "geometry/point_view.h"

namespace ukc {
namespace solver {

using geometry::Point;

bool Ball::Contains(const geometry::Point& p, double slack) const {
  const double limit = radius * (1.0 + slack) + 1e-12;
  return geometry::Distance(center, p) <= limit;
}

Result<Ball> CircumscribedBall(const std::vector<Point>& support) {
  if (support.empty()) {
    return Status::InvalidArgument("CircumscribedBall: empty support");
  }
  const size_t dim = support[0].dim();
  if (support.size() > dim + 1) {
    return Status::InvalidArgument(
        "CircumscribedBall: support larger than dim+1");
  }
  if (support.size() == 1) {
    return Ball{support[0], 0.0};
  }

  // Solve the Gram system: center = p0 + sum_j lambda_j v_j with
  // (center - p0) . v_i = |v_i|^2 / 2, where v_i = p_i - p0.
  const size_t m = support.size() - 1;
  std::vector<Point> v;
  v.reserve(m);
  for (size_t i = 1; i < support.size(); ++i) {
    v.push_back(support[i] - support[0]);
  }
  // Augmented matrix [G | b].
  std::vector<std::vector<double>> a(m, std::vector<double>(m + 1, 0.0));
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < m; ++j) a[i][j] = v[i].Dot(v[j]);
    a[i][m] = v[i].SquaredNorm() / 2.0;
  }
  // Gaussian elimination with partial pivoting.
  for (size_t col = 0; col < m; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < m; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-12) {
      return Status::FailedPrecondition(
          "CircumscribedBall: affinely dependent (degenerate) support");
    }
    std::swap(a[col], a[pivot]);
    for (size_t row = col + 1; row < m; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (size_t j = col; j <= m; ++j) a[row][j] -= factor * a[col][j];
    }
  }
  std::vector<double> lambda(m, 0.0);
  for (size_t row = m; row-- > 0;) {
    double value = a[row][m];
    for (size_t j = row + 1; j < m; ++j) value -= a[row][j] * lambda[j];
    lambda[row] = value / a[row][row];
  }

  Point center = support[0];
  for (size_t j = 0; j < m; ++j) center += v[j] * lambda[j];
  return Ball{center, geometry::Distance(center, support[0])};
}

namespace {

// Smallest ball with all support points on the boundary; the "empty"
// ball (radius -1, contains nothing) for an empty support.
Ball TrivialBall(const std::vector<Point>& support, size_t dim) {
  if (support.empty()) {
    Ball ball;
    ball.center = Point(dim);
    ball.radius = -1.0;
    return ball;
  }
  auto ball = CircumscribedBall(support);
  if (ball.ok()) return std::move(ball).value();
  // Degenerate support (possible only through round-off, since callers
  // add support points one at a time and only when strictly outside):
  // fall back to the two extreme points.
  Ball fallback;
  fallback.center = support[0];
  fallback.radius = 0.0;
  for (const Point& p : support) {
    fallback.radius = std::max(fallback.radius,
                               geometry::Distance(fallback.center, p));
  }
  return fallback;
}

// Welzl with move-to-front [Gärtner 1999 style]: the recursion is over
// the support only (depth <= dim+2); the point list is scanned
// iteratively with successful boundary points moved to the front.
class WelzlSolver {
 public:
  WelzlSolver(std::vector<Point> points, size_t dim)
      : points_(std::move(points)), dim_(dim) {}

  Ball Run() {
    std::vector<Point> support;
    return MinBall(points_.size(), &support);
  }

 private:
  Ball MinBall(size_t prefix, std::vector<Point>* support) {
    Ball ball = TrivialBall(*support, dim_);
    if (support->size() == dim_ + 1) return ball;
    for (size_t i = 0; i < prefix; ++i) {
      if (ball.Contains(points_[i])) continue;
      support->push_back(points_[i]);
      ball = MinBall(i, support);
      support->pop_back();
      // Move-to-front: keeps hard points early, making the expected
      // number of restarts linear.
      std::rotate(points_.begin(), points_.begin() + i,
                  points_.begin() + i + 1);
    }
    return ball;
  }

  std::vector<Point> points_;
  size_t dim_;
};

}  // namespace

Result<Ball> WelzlMinBall(const std::vector<Point>& points, Rng& rng) {
  if (points.empty()) {
    return Status::InvalidArgument("WelzlMinBall: no points");
  }
  const size_t dim = points[0].dim();
  for (const Point& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("WelzlMinBall: mixed dimensions");
    }
  }
  std::vector<Point> shuffled(points);
  rng.Shuffle(&shuffled);
  WelzlSolver solver(std::move(shuffled), dim);
  return solver.Run();
}

Result<Ball> BadoiuClarkson(const std::vector<Point>& points, double eps) {
  if (points.empty()) {
    return Status::InvalidArgument("BadoiuClarkson: no points");
  }
  if (!(eps > 0.0) || eps > 1.0) {
    return Status::InvalidArgument("BadoiuClarkson: eps must be in (0, 1]");
  }
  const size_t dim = points[0].dim();
  for (const Point& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("BadoiuClarkson: mixed dimensions");
    }
  }

  const size_t iterations =
      static_cast<size_t>(std::ceil(1.0 / (eps * eps))) + 1;
  // Flatten once; the farthest-point scans then run over contiguous
  // memory with the dimension-specialized kernel.
  std::vector<double> coords;
  coords.reserve(points.size() * dim);
  for (const Point& p : points) {
    coords.insert(coords.end(), p.coords().begin(), p.coords().end());
  }
  std::vector<double> center(coords.begin(), coords.begin() + dim);
  for (size_t i = 1; i <= iterations; ++i) {
    // Farthest point from the current center.
    size_t farthest = 0;
    double worst = -1.0;
    for (size_t j = 0; j < points.size(); ++j) {
      const double d = geometry::SquaredDistanceKernel(
          center.data(), coords.data() + j * dim, dim);
      if (d > worst) {
        worst = d;
        farthest = j;
      }
    }
    const double* far = coords.data() + farthest * dim;
    const double step = 1.0 / static_cast<double>(i + 1);
    for (size_t a = 0; a < dim; ++a) {
      center[a] += (far[a] - center[a]) * step;
    }
  }

  Ball ball;
  ball.center = geometry::PointView(center.data(), dim).ToPoint();
  double worst2 = 0.0;
  for (size_t j = 0; j < points.size(); ++j) {
    worst2 = std::max(worst2, geometry::SquaredDistanceKernel(
                                  center.data(), coords.data() + j * dim, dim));
  }
  ball.radius = std::sqrt(worst2);
  return ball;
}

}  // namespace solver
}  // namespace ukc
