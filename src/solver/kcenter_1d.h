// Exact k-center for certain points on the real line.
//
// The deterministic 1D problem is polynomial [Megiddo et al. 1981]; this
// module provides two exact algorithms used as references and as the
// final clustering step of the paper's R^1 pipeline (Table 1 row 8):
//
//  * KCenter1DDP        — O(n^2 k) dynamic program over sorted points;
//                         simple, exact, used as the test oracle.
//  * KCenter1D          — binary search over the O(n^2) candidate radii
//                         (half pairwise gaps) with a greedy feasibility
//                         sweep; exact and much faster in practice.

#ifndef UKC_SOLVER_KCENTER_1D_H_
#define UKC_SOLVER_KCENTER_1D_H_

#include <vector>

#include "common/result.h"

namespace ukc {
namespace solver {

/// Solution on the line: cluster boundaries and centers as coordinates.
struct KCenter1DSolution {
  /// Optimal centers (midpoints of the clusters' extreme points).
  std::vector<double> centers;
  /// The optimal radius: max distance from a point to its center.
  double radius = 0.0;
  /// cluster_of[i] = index of the center serving sorted point i.
  std::vector<size_t> cluster_of;
};

/// Exact O(n^2 k) dynamic program. `values` need not be sorted.
Result<KCenter1DSolution> KCenter1DDP(const std::vector<double>& values,
                                      size_t k);

/// Exact candidate-radius binary search, O(n^2) candidates but only
/// O(n log n) per feasibility test. `values` need not be sorted.
Result<KCenter1DSolution> KCenter1D(const std::vector<double>& values, size_t k);

}  // namespace solver
}  // namespace ukc

#endif  // UKC_SOLVER_KCENTER_1D_H_
