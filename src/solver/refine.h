// Alternating refinement for k-center ("Lloyd for the max radius"):
// reassign sites to their nearest center, then recenter each cluster —
// with its exact minimum enclosing ball in Euclidean spaces, or its
// discrete 1-center in general metric spaces. The covering radius never
// increases, so the seed solver's guarantee is preserved while the
// constant improves markedly in practice.

#ifndef UKC_SOLVER_REFINE_H_
#define UKC_SOLVER_REFINE_H_

#include "common/result.h"
#include "common/rng.h"
#include "metric/euclidean_space.h"
#include "metric/metric_space.h"
#include "solver/types.h"

namespace ukc {

class ThreadPool;

namespace solver {

/// Options for RefineKCenter.
struct RefineOptions {
  size_t max_rounds = 50;
  /// Stop when a round improves the radius by less than this relative
  /// amount.
  double min_relative_improvement = 1e-9;
  uint64_t seed = 23;  // Drives Welzl shuffles.
  /// Workers sharding the per-site assignment and per-cluster
  /// recentering (<= 0 = hardware threads). Each cluster's Welzl
  /// shuffle draws from an rng forked by (round, cluster), so the
  /// result does not depend on the thread count.
  int threads = 1;
  /// Borrowed shared worker pool; when set, `threads` is ignored and no
  /// private pool is constructed (see ScopedPool in common/thread_pool.h).
  ThreadPool* pool = nullptr;
};

/// Refines `seed` over `sites`. `space` must be the space the seed was
/// computed in; when it is a EuclideanSpace, refined centers are minted
/// as new sites (the space grows). The result's radius is <= the seed's
/// radius, and approx_factor is inherited from the seed.
Result<KCenterSolution> RefineKCenter(metric::MetricSpace* space,
                                      const std::vector<metric::SiteId>& sites,
                                      const KCenterSolution& seed,
                                      const RefineOptions& options = {});

}  // namespace solver
}  // namespace ukc

#endif  // UKC_SOLVER_REFINE_H_
