#include "solver/kcenter_1d.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace ukc {
namespace solver {

namespace {

Status ValidateInput(const std::vector<double>& values, size_t k) {
  if (k == 0) return Status::InvalidArgument("KCenter1D: k must be >= 1");
  if (values.empty()) return Status::InvalidArgument("KCenter1D: no points");
  return Status::OK();
}

// Builds the solution for sorted points given the optimal radius: sweep
// greedily, each cluster anchored at its leftmost point.
KCenter1DSolution BuildSolution(const std::vector<double>& sorted, double r) {
  KCenter1DSolution solution;
  solution.cluster_of.resize(sorted.size());
  size_t start = 0;
  double realized = 0.0;
  while (start < sorted.size()) {
    size_t end = start;
    while (end + 1 < sorted.size() && sorted[end + 1] - sorted[start] <= 2.0 * r) {
      ++end;
    }
    const double half_width = (sorted[end] - sorted[start]) / 2.0;
    solution.centers.push_back(sorted[start] + half_width);
    realized = std::max(realized, half_width);
    for (size_t i = start; i <= end; ++i) {
      solution.cluster_of[i] = solution.centers.size() - 1;
    }
    start = end + 1;
  }
  solution.radius = realized;
  return solution;
}

// Number of clusters the greedy sweep needs at radius r.
size_t GreedyClusters(const std::vector<double>& sorted, double r) {
  size_t clusters = 0;
  size_t start = 0;
  while (start < sorted.size()) {
    size_t end = start;
    while (end + 1 < sorted.size() && sorted[end + 1] - sorted[start] <= 2.0 * r) {
      ++end;
    }
    ++clusters;
    start = end + 1;
  }
  return clusters;
}

}  // namespace

Result<KCenter1DSolution> KCenter1DDP(const std::vector<double>& values,
                                      size_t k) {
  UKC_RETURN_IF_ERROR(ValidateInput(values, k));
  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  const size_t n = sorted.size();
  if (k >= n) return BuildSolution(sorted, 0.0);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // dp[j][i]: minimal radius covering the first i sorted points with j
  // clusters; rolling over j.
  std::vector<double> previous(n + 1, kInf);
  std::vector<double> current(n + 1, kInf);
  previous[0] = 0.0;
  for (size_t j = 1; j <= k; ++j) {
    current.assign(n + 1, kInf);
    current[0] = 0.0;
    for (size_t i = 1; i <= n; ++i) {
      // Last cluster covers sorted[t..i-1].
      for (size_t t = 0; t < i; ++t) {
        if (previous[t] == kInf) continue;
        const double width = (sorted[i - 1] - sorted[t]) / 2.0;
        const double radius = std::max(previous[t], width);
        current[i] = std::min(current[i], radius);
      }
    }
    std::swap(previous, current);
  }
  return BuildSolution(sorted, previous[n]);
}

Result<KCenter1DSolution> KCenter1D(const std::vector<double>& values, size_t k) {
  UKC_RETURN_IF_ERROR(ValidateInput(values, k));
  std::vector<double> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  if (k >= sorted.size()) return BuildSolution(sorted, 0.0);

  // Candidate radii: half of every pairwise gap (the optimal radius is
  // always half the width of some cluster), plus zero.
  std::vector<double> candidates;
  candidates.reserve(sorted.size() * (sorted.size() - 1) / 2 + 1);
  candidates.push_back(0.0);
  for (size_t i = 0; i < sorted.size(); ++i) {
    for (size_t j = i + 1; j < sorted.size(); ++j) {
      candidates.push_back((sorted[j] - sorted[i]) / 2.0);
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  size_t lo = 0;
  size_t hi = candidates.size() - 1;
  if (GreedyClusters(sorted, candidates[lo]) <= k) {
    hi = lo;
  } else {
    while (hi - lo > 1) {
      const size_t mid = lo + (hi - lo) / 2;
      (GreedyClusters(sorted, candidates[mid]) <= k ? hi : lo) = mid;
    }
  }
  return BuildSolution(sorted, candidates[hi]);
}

}  // namespace solver
}  // namespace ukc
