// Gonzalez's farthest-first traversal [Gonzalez 1985], the greedy
// 2-approximation for k-center that the paper's Remark 3.1 plugs into
// its surrogate pipeline.

#ifndef UKC_SOLVER_GONZALEZ_H_
#define UKC_SOLVER_GONZALEZ_H_

#include <cstddef>

#include "common/result.h"
#include "metric/metric_space.h"
#include "solver/types.h"

namespace ukc {
namespace solver {

/// Options for Gonzalez.
struct GonzalezOptions {
  /// Index (into `sites`) of the first center. The guarantee holds for
  /// any choice; exposing it allows derandomized sweeps in tests.
  size_t first_index = 0;
};

/// Runs farthest-first traversal over `sites`, returning k centers drawn
/// from `sites` with covering radius at most twice the optimal k-center
/// radius (discrete or continuous, in any metric space). O(k·|sites|)
/// distance evaluations. Fails if k == 0 or sites is empty; when
/// k >= |sites| every site becomes a center (radius 0).
Result<KCenterSolution> Gonzalez(const metric::MetricSpace& space,
                                 const std::vector<metric::SiteId>& sites,
                                 size_t k, const GonzalezOptions& options = {});

}  // namespace solver
}  // namespace ukc

#endif  // UKC_SOLVER_GONZALEZ_H_
