// Local-search k-median over an explicit client×facility cost matrix
// [Arya et al. 2004]: start from a greedy solution, repeatedly apply
// the best single swap (close one open facility, open one closed) while
// it improves the connection cost. Single-swap local optima are
// 5-approximate for metric costs; the uncertain k-median reduction
// (core/kmedian.h) feeds it expected-distance costs.

#ifndef UKC_SOLVER_KMEDIAN_LOCAL_SEARCH_H_
#define UKC_SOLVER_KMEDIAN_LOCAL_SEARCH_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace ukc {

class ThreadPool;

namespace solver {

/// Options for KMedianLocalSearch.
struct KMedianOptions {
  /// Stop after this many improving swaps (safety valve; local search
  /// terminates on its own long before on sane inputs).
  size_t max_swaps = 10'000;
  /// Accept a swap only if it improves by this relative amount; the
  /// standard trick that bounds the number of iterations polynomially.
  double min_relative_improvement = 1e-9;
  /// Workers sharding the greedy-start and swap scans (<= 0 = hardware
  /// threads). The chosen facilities do not depend on this: candidate
  /// totals are written by index and the argmin is an ordered scan.
  int threads = 1;
  /// Borrowed shared worker pool; when set, `threads` is ignored and no
  /// private pool is constructed (see ScopedPool in common/thread_pool.h).
  ThreadPool* pool = nullptr;
};

/// Solution: which facilities (columns) are open, each client's
/// facility, and the total connection cost Σ_i cost[i][open(i)].
struct KMedianSolution {
  std::vector<size_t> facilities;
  std::vector<size_t> assignment;  // Per client, index into `facilities`... no:
                                   // column index of its serving facility.
  double total_cost = 0.0;
};

/// Minimizes Σ_i min_{f in S} cost[i][f] over |S| = k. `cost` is a
/// non-empty rectangular matrix (clients × facilities) of finite
/// non-negative entries; k <= #facilities.
Result<KMedianSolution> KMedianLocalSearch(
    const std::vector<std::vector<double>>& cost, size_t k,
    const KMedianOptions& options = {});

/// Exact k-median by subset enumeration, for tiny facility counts.
Result<KMedianSolution> KMedianExact(const std::vector<std::vector<double>>& cost,
                                     size_t k, uint64_t max_subsets = 5'000'000);

}  // namespace solver
}  // namespace ukc

#endif  // UKC_SOLVER_KMEDIAN_LOCAL_SEARCH_H_
