#include "solver/geometric_median.h"

#include <cmath>

#include "geometry/box.h"

namespace ukc {
namespace solver {

using geometry::Point;

namespace {

double Objective(const std::vector<Point>& points,
                 const std::vector<double>& weights, const Point& q) {
  double total = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    total += weights[i] * geometry::Distance(points[i], q);
  }
  return total;
}

}  // namespace

Result<GeometricMedianResult> WeightedGeometricMedian(
    const std::vector<Point>& points, const std::vector<double>& weights,
    const GeometricMedianOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("WeightedGeometricMedian: no points");
  }
  if (points.size() != weights.size()) {
    return Status::InvalidArgument(
        "WeightedGeometricMedian: points/weights size mismatch");
  }
  const size_t dim = points[0].dim();
  for (const Point& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("WeightedGeometricMedian: mixed dimensions");
    }
  }
  for (double w : weights) {
    if (!(w > 0.0)) {
      return Status::InvalidArgument(
          "WeightedGeometricMedian: weights must be positive");
    }
  }

  GeometricMedianResult result;
  if (points.size() == 1) {
    result.median = points[0];
    result.objective = 0.0;
    result.converged = true;
    return result;
  }

  const double scale =
      std::max(geometry::Box::BoundingBox(points).Diagonal(), 1e-300);
  const double step_tolerance = scale * options.relative_tolerance;
  // Anchor-coincidence threshold: treat q as sitting on an anchor when
  // closer than this.
  const double snap = scale * 1e-14;

  // Start from the weighted centroid, which already minimizes the
  // squared-distance relaxation.
  Point q = geometry::WeightedCentroid(points, weights);
  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    // T(q) = sum w_i p_i / d_i / sum w_i / d_i over anchors away from q;
    // Vardi–Zhang: if q coincides with anchor a, step only if the pull
    // R of the other anchors exceeds w_a, scaled by (1 - w_a/|R|).
    Point numerator(dim);
    double denominator = 0.0;
    Point pull(dim);
    double coincident_weight = 0.0;
    for (size_t i = 0; i < points.size(); ++i) {
      const double d = geometry::Distance(points[i], q);
      if (d <= snap) {
        coincident_weight += weights[i];
        continue;
      }
      const double w_over_d = weights[i] / d;
      numerator += points[i] * w_over_d;
      denominator += w_over_d;
      pull += (points[i] - q) * w_over_d;
    }
    if (denominator == 0.0) {
      // All mass sits exactly at q: q is the median.
      result.converged = true;
      break;
    }
    Point next = numerator * (1.0 / denominator);
    if (coincident_weight > 0.0) {
      const double pull_norm = pull.Norm();
      if (pull_norm <= coincident_weight) {
        // The anchor's weight dominates the drift: q is optimal.
        result.converged = true;
        break;
      }
      const double damping = 1.0 - coincident_weight / pull_norm;
      next = q + (next - q) * damping;
    }
    const double step = geometry::Distance(q, next);
    q = next;
    if (step <= step_tolerance) {
      result.converged = true;
      break;
    }
  }

  result.median = q;
  result.objective = Objective(points, weights, q);
  return result;
}

}  // namespace solver
}  // namespace ukc
