#include "solver/geometric_median.h"

#include <cmath>

#include "geometry/point_view.h"

namespace ukc {
namespace solver {

using geometry::Point;

namespace {

double FlatObjective(const double* coords, size_t count, size_t dim,
                     const double* weights, const double* q) {
  double total = 0.0;
  for (size_t i = 0; i < count; ++i) {
    total += weights[i] * geometry::DistanceKernel(coords + i * dim, q, dim);
  }
  return total;
}

// Diagonal of the bounding box of `count` flat points.
double FlatBoundingDiagonal(const double* coords, size_t count, size_t dim) {
  double total = 0.0;
  for (size_t a = 0; a < dim; ++a) {
    double lo = coords[a];
    double hi = coords[a];
    for (size_t i = 1; i < count; ++i) {
      const double v = coords[i * dim + a];
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    total += (hi - lo) * (hi - lo);
  }
  return std::sqrt(total);
}

}  // namespace

Result<GeometricMedianResult> WeightedGeometricMedianFlat(
    const double* coords, size_t count, size_t dim, const double* weights,
    const GeometricMedianOptions& options) {
  if (count == 0) {
    return Status::InvalidArgument("WeightedGeometricMedian: no points");
  }
  for (size_t i = 0; i < count; ++i) {
    if (!(weights[i] > 0.0)) {
      return Status::InvalidArgument(
          "WeightedGeometricMedian: weights must be positive");
    }
  }

  GeometricMedianResult result;
  if (count == 1) {
    result.median = geometry::PointView(coords, dim).ToPoint();
    result.objective = 0.0;
    result.converged = true;
    return result;
  }

  const double scale =
      std::max(FlatBoundingDiagonal(coords, count, dim), 1e-300);
  const double step_tolerance = scale * options.relative_tolerance;
  // Anchor-coincidence threshold: treat q as sitting on an anchor when
  // closer than this.
  const double snap = scale * 1e-14;

  // Start from the weighted centroid, which already minimizes the
  // squared-distance relaxation. All iteration state is flat scratch;
  // the loop performs no allocation.
  std::vector<double> q(dim, 0.0);
  double total_weight = 0.0;
  for (size_t i = 0; i < count; ++i) {
    const double* p = coords + i * dim;
    for (size_t a = 0; a < dim; ++a) q[a] += weights[i] * p[a];
    total_weight += weights[i];
  }
  for (size_t a = 0; a < dim; ++a) q[a] /= total_weight;

  std::vector<double> numerator(dim);
  std::vector<double> pull(dim);
  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    // T(q) = sum w_i p_i / d_i / sum w_i / d_i over anchors away from q;
    // Vardi–Zhang: if q coincides with anchor a, step only if the pull
    // R of the other anchors exceeds w_a, scaled by (1 - w_a/|R|).
    std::fill(numerator.begin(), numerator.end(), 0.0);
    std::fill(pull.begin(), pull.end(), 0.0);
    double denominator = 0.0;
    double coincident_weight = 0.0;
    for (size_t i = 0; i < count; ++i) {
      const double* p = coords + i * dim;
      const double d = geometry::DistanceKernel(p, q.data(), dim);
      if (d <= snap) {
        coincident_weight += weights[i];
        continue;
      }
      const double w_over_d = weights[i] / d;
      for (size_t a = 0; a < dim; ++a) {
        numerator[a] += p[a] * w_over_d;
        pull[a] += (p[a] - q[a]) * w_over_d;
      }
      denominator += w_over_d;
    }
    if (denominator == 0.0) {
      // All mass sits exactly at q: q is the median.
      result.converged = true;
      break;
    }
    double damping = 1.0;
    if (coincident_weight > 0.0) {
      double pull_norm2 = 0.0;
      for (size_t a = 0; a < dim; ++a) pull_norm2 += pull[a] * pull[a];
      const double pull_norm = std::sqrt(pull_norm2);
      if (pull_norm <= coincident_weight) {
        // The anchor's weight dominates the drift: q is optimal.
        result.converged = true;
        break;
      }
      damping = 1.0 - coincident_weight / pull_norm;
    }
    double step2 = 0.0;
    for (size_t a = 0; a < dim; ++a) {
      const double target = numerator[a] / denominator;
      const double next = q[a] + (target - q[a]) * damping;
      const double delta = next - q[a];
      step2 += delta * delta;
      q[a] = next;
    }
    if (std::sqrt(step2) <= step_tolerance) {
      result.converged = true;
      break;
    }
  }

  result.median = geometry::PointView(q.data(), dim).ToPoint();
  result.objective = FlatObjective(coords, count, dim, weights, q.data());
  return result;
}

Result<GeometricMedianResult> WeightedGeometricMedian(
    const std::vector<Point>& points, const std::vector<double>& weights,
    const GeometricMedianOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("WeightedGeometricMedian: no points");
  }
  if (points.size() != weights.size()) {
    return Status::InvalidArgument(
        "WeightedGeometricMedian: points/weights size mismatch");
  }
  const size_t dim = points[0].dim();
  std::vector<double> coords;
  coords.reserve(points.size() * dim);
  for (const Point& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("WeightedGeometricMedian: mixed dimensions");
    }
    coords.insert(coords.end(), p.coords().begin(), p.coords().end());
  }
  return WeightedGeometricMedianFlat(coords.data(), points.size(), dim,
                                     weights.data(), options);
}

}  // namespace solver
}  // namespace ukc
