// Weighted k-means in R^d: k-means++ seeding plus Lloyd iterations.
// The deterministic substrate of the uncertain k-means extension
// (core/kmeans.h), where it runs on the expected points.

#ifndef UKC_SOLVER_LLOYD_H_
#define UKC_SOLVER_LLOYD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "geometry/point.h"

namespace ukc {
namespace solver {

/// Options for WeightedKMeans.
struct KMeansOptions {
  size_t max_iterations = 100;
  /// Stop when an iteration improves the objective by less than this
  /// relative amount.
  double min_relative_improvement = 1e-10;
  /// Independent k-means++ restarts; the best run wins.
  size_t restarts = 3;
  uint64_t seed = 37;
};

/// Output: centers, per-point cluster index, and the weighted
/// sum-of-squared-distances objective.
struct KMeansSolution {
  std::vector<geometry::Point> centers;
  std::vector<size_t> cluster_of;
  double objective = 0.0;
  size_t iterations = 0;
};

/// Flat-buffer output: centers as one row-major k × dim block. The
/// no-boxing twin of KMeansSolution — callers holding a coordinate
/// arena (core/kmeans.cc) mint the rows directly via AddCoords.
struct KMeansFlatSolution {
  std::vector<double> centers;  // k rows of dim.
  std::vector<size_t> cluster_of;
  double objective = 0.0;
  size_t iterations = 0;
};

/// Minimizes Σ_i w_i ||p_i - c_{a(i)}||² over centers and assignment,
/// entirely over flat row-major buffers: coords holds `count` rows of
/// `dim`. Weights must be positive; k >= 1. When k >= #distinct points
/// the objective reaches 0. Lloyd converges to a local optimum;
/// k-means++ seeding gives the usual O(log k) expected-quality
/// guarantee.
Result<KMeansFlatSolution> WeightedKMeansFlat(std::span<const double> coords,
                                              size_t count, size_t dim,
                                              std::span<const double> weights,
                                              size_t k,
                                              const KMeansOptions& options = {});

/// Boxed-Point boundary wrapper over WeightedKMeansFlat. Prefer the
/// flat entry point in pipelines; this exists for callers that already
/// hold geometry::Point vectors (tests, examples).
Result<KMeansSolution> WeightedKMeans(const std::vector<geometry::Point>& points,
                                      const std::vector<double>& weights,
                                      size_t k, const KMeansOptions& options = {});

}  // namespace solver
}  // namespace ukc

#endif  // UKC_SOLVER_LLOYD_H_
