// A true (1+eps)-approximation for the Euclidean k-center problem with
// small k (Agarwal–Procopiuc-style grid discretization).
//
// Bracket the optimum with Gonzalez (opt in [r_G/2, r_G]), then binary
// search the radius r. The decision procedure snaps space to a grid of
// cell size eps'·r/sqrt(d), collects as candidate centers the grid
// points near input points, and searches for k candidates covering all
// points at radius (1+eps')r by bounded-depth branch and bound (an
// uncovered point can only be covered by the O((1/eps')^d) candidates
// within its ball, so the branching factor is a constant for fixed eps
// and d). Runtime is exponential in k — exactly like the (1+eps)
// algorithms the paper cites — and practical for k <= ~5, d <= 3.

#ifndef UKC_SOLVER_GRID_KCENTER_H_
#define UKC_SOLVER_GRID_KCENTER_H_

#include "common/result.h"
#include "geometry/point.h"
#include "solver/partition_exact.h"

namespace ukc {
namespace solver {

/// Options for GridKCenter.
struct GridKCenterOptions {
  /// Target approximation: returned radius <= (1+eps) * optimum.
  double eps = 0.25;
  /// Cap on the candidate-set size per decision (safety valve against
  /// tiny eps in high dimension).
  size_t max_candidates = 200'000;
  /// Cap on branch-and-bound nodes per decision.
  uint64_t max_nodes = 5'000'000;
};

/// Computes a (1+eps)-approximate k-center of `points` in R^d.
/// Fails when the candidate or search caps would be exceeded (reduce k,
/// increase eps, or use Gonzalez instead).
Result<ContinuousKCenterSolution> GridKCenter(
    const std::vector<geometry::Point>& points, size_t k,
    const GridKCenterOptions& options = {});

}  // namespace solver
}  // namespace ukc

#endif  // UKC_SOLVER_GRID_KCENTER_H_
