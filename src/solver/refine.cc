#include "solver/refine.h"

#include <algorithm>
#include <limits>

#include "solver/enclosing_ball.h"

namespace ukc {
namespace solver {

namespace {

// Partitions sites by nearest center; returns cluster membership lists
// aligned with `centers`.
std::vector<std::vector<metric::SiteId>> AssignClusters(
    const metric::MetricSpace& space, const std::vector<metric::SiteId>& sites,
    const std::vector<metric::SiteId>& centers) {
  std::vector<std::vector<metric::SiteId>> clusters(centers.size());
  for (metric::SiteId s : sites) {
    size_t best = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centers.size(); ++c) {
      const double d = space.Distance(s, centers[c]);
      if (d < best_distance) {
        best_distance = d;
        best = c;
      }
    }
    clusters[best].push_back(s);
  }
  return clusters;
}

// The site of `cluster` minimizing the max distance to the cluster (the
// discrete 1-center). Used in general metric spaces.
metric::SiteId DiscreteOneCenter(const metric::MetricSpace& space,
                                 const std::vector<metric::SiteId>& cluster) {
  metric::SiteId best = cluster[0];
  double best_radius = std::numeric_limits<double>::infinity();
  for (metric::SiteId candidate : cluster) {
    double radius = 0.0;
    for (metric::SiteId s : cluster) {
      radius = std::max(radius, space.Distance(candidate, s));
      if (radius >= best_radius) break;
    }
    if (radius < best_radius) {
      best_radius = radius;
      best = candidate;
    }
  }
  return best;
}

}  // namespace

Result<KCenterSolution> RefineKCenter(metric::MetricSpace* space,
                                      const std::vector<metric::SiteId>& sites,
                                      const KCenterSolution& seed,
                                      const RefineOptions& options) {
  if (space == nullptr) {
    return Status::InvalidArgument("RefineKCenter: null space");
  }
  if (seed.centers.empty()) {
    return Status::InvalidArgument("RefineKCenter: seed has no centers");
  }
  if (sites.empty()) {
    return Status::InvalidArgument("RefineKCenter: no sites");
  }
  auto* euclidean = dynamic_cast<metric::EuclideanSpace*>(space);
  Rng rng(options.seed);

  KCenterSolution best = seed;
  best.radius = CoveringRadius(*space, sites, best.centers);
  best.algorithm = seed.algorithm + "+refine";

  std::vector<metric::SiteId> centers = best.centers;
  for (size_t round = 0; round < options.max_rounds; ++round) {
    const auto clusters = AssignClusters(*space, sites, centers);
    std::vector<metric::SiteId> next;
    next.reserve(centers.size());
    for (size_t c = 0; c < clusters.size(); ++c) {
      if (clusters[c].empty()) {
        next.push_back(centers[c]);  // Keep an idle center in place.
        continue;
      }
      if (euclidean != nullptr) {
        std::vector<geometry::Point> members;
        members.reserve(clusters[c].size());
        for (metric::SiteId s : clusters[c]) {
          members.push_back(euclidean->point(s));
        }
        UKC_ASSIGN_OR_RETURN(Ball ball, WelzlMinBall(members, rng));
        next.push_back(euclidean->AddPoint(ball.center));
      } else {
        next.push_back(DiscreteOneCenter(*space, clusters[c]));
      }
    }
    const double radius = CoveringRadius(*space, sites, next);
    const double improvement = best.radius - radius;
    if (radius < best.radius) {
      best.radius = radius;
      best.centers = next;
    }
    if (improvement < options.min_relative_improvement * best.radius) break;
    centers = next;
  }
  return best;
}

}  // namespace solver
}  // namespace ukc
