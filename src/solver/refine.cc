#include "solver/refine.h"

#include <algorithm>
#include <limits>

#include "common/thread_pool.h"
#include "solver/enclosing_ball.h"

namespace ukc {
namespace solver {

namespace {

// Partitions sites by nearest center; returns cluster membership lists
// aligned with `centers`. The per-site nearest-center scans shard over
// the pool into a label array; the membership lists are then built
// serially in site order, so the clusters are thread-count independent.
std::vector<std::vector<metric::SiteId>> AssignClusters(
    const metric::MetricSpace& space, const std::vector<metric::SiteId>& sites,
    const std::vector<metric::SiteId>& centers, ThreadPool& pool) {
  std::vector<size_t> label(sites.size(), 0);
  pool.ParallelFor(sites.size(), [&](int, size_t s) {
    size_t best = 0;
    double best_distance = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centers.size(); ++c) {
      const double d = space.Distance(sites[s], centers[c]);
      if (d < best_distance) {
        best_distance = d;
        best = c;
      }
    }
    label[s] = best;
  });
  std::vector<std::vector<metric::SiteId>> clusters(centers.size());
  for (size_t s = 0; s < sites.size(); ++s) {
    clusters[label[s]].push_back(sites[s]);
  }
  return clusters;
}

// The site of `cluster` minimizing the max distance to the cluster (the
// discrete 1-center). Used in general metric spaces.
metric::SiteId DiscreteOneCenter(const metric::MetricSpace& space,
                                 const std::vector<metric::SiteId>& cluster) {
  metric::SiteId best = cluster[0];
  double best_radius = std::numeric_limits<double>::infinity();
  for (metric::SiteId candidate : cluster) {
    double radius = 0.0;
    for (metric::SiteId s : cluster) {
      radius = std::max(radius, space.Distance(candidate, s));
      if (radius >= best_radius) break;
    }
    if (radius < best_radius) {
      best_radius = radius;
      best = candidate;
    }
  }
  return best;
}

}  // namespace

Result<KCenterSolution> RefineKCenter(metric::MetricSpace* space,
                                      const std::vector<metric::SiteId>& sites,
                                      const KCenterSolution& seed,
                                      const RefineOptions& options) {
  if (space == nullptr) {
    return Status::InvalidArgument("RefineKCenter: null space");
  }
  if (seed.centers.empty()) {
    return Status::InvalidArgument("RefineKCenter: seed has no centers");
  }
  if (sites.empty()) {
    return Status::InvalidArgument("RefineKCenter: no sites");
  }
  auto* euclidean = dynamic_cast<metric::EuclideanSpace*>(space);
  Rng rng(options.seed);
  ScopedPool pool(options.pool, options.threads);

  KCenterSolution best = seed;
  best.radius = CoveringRadius(*space, sites, best.centers);
  best.algorithm = seed.algorithm + "+refine";

  std::vector<metric::SiteId> centers = best.centers;
  for (size_t round = 0; round < options.max_rounds; ++round) {
    const auto clusters = AssignClusters(*space, sites, centers, *pool);

    // Recenter every non-empty cluster in parallel. The computation is
    // pure (Welzl balls / discrete 1-centers); Euclidean centers are
    // minted into the space serially afterwards, in cluster order, so
    // site ids are deterministic. Each cluster's Welzl shuffle uses an
    // rng forked by (round, cluster), not a shared sequential stream.
    const size_t num_clusters = clusters.size();
    std::vector<Ball> balls(euclidean != nullptr ? num_clusters : 0);
    std::vector<metric::SiteId> discrete(euclidean == nullptr ? num_clusters
                                                              : 0);
    std::vector<Status> statuses(num_clusters);
    Rng round_rng = rng.Fork(round);
    std::vector<Rng> cluster_rngs;
    cluster_rngs.reserve(num_clusters);
    for (size_t c = 0; c < num_clusters; ++c) {
      cluster_rngs.push_back(round_rng.Fork(c));
    }
    pool->ParallelFor(num_clusters, [&](int, size_t c) {
      if (clusters[c].empty()) return;
      if (euclidean != nullptr) {
        std::vector<geometry::Point> members;
        members.reserve(clusters[c].size());
        for (metric::SiteId s : clusters[c]) {
          members.push_back(euclidean->point(s));
        }
        auto ball = WelzlMinBall(members, cluster_rngs[c]);
        if (!ball.ok()) {
          statuses[c] = ball.status();
          return;
        }
        balls[c] = std::move(ball).value();
      } else {
        discrete[c] = DiscreteOneCenter(*space, clusters[c]);
      }
    });
    for (Status& status : statuses) {
      if (!status.ok()) return std::move(status);
    }

    std::vector<metric::SiteId> next;
    next.reserve(centers.size());
    for (size_t c = 0; c < num_clusters; ++c) {
      if (clusters[c].empty()) {
        next.push_back(centers[c]);  // Keep an idle center in place.
      } else if (euclidean != nullptr) {
        next.push_back(euclidean->AddPoint(balls[c].center));
      } else {
        next.push_back(discrete[c]);
      }
    }
    const double radius = CoveringRadius(*space, sites, next);
    const double improvement = best.radius - radius;
    if (radius < best.radius) {
      best.radius = radius;
      best.centers = next;
    }
    if (improvement < options.min_relative_improvement * best.radius) break;
    centers = next;
  }
  return best;
}

}  // namespace solver
}  // namespace ukc
