// Exact discrete k-center by exhaustive enumeration of center subsets.
// The experiment harness uses it as ground truth on tiny instances.

#ifndef UKC_SOLVER_BRUTE_FORCE_H_
#define UKC_SOLVER_BRUTE_FORCE_H_

#include "common/result.h"
#include "metric/metric_space.h"
#include "solver/types.h"

namespace ukc {
namespace solver {

/// Options for ExactDiscreteKCenter.
struct BruteForceOptions {
  /// Refuses instances where C(|candidates|, k) exceeds this, to keep
  /// accidental exponential blowups out of test runs.
  uint64_t max_subsets = 20'000'000;
};

/// Finds the optimal k centers *restricted to `candidates`* covering
/// `sites`, by enumerating every k-subset with branch-and-bound pruning.
/// approx_factor is 1 (with respect to the discrete optimum).
Result<KCenterSolution> ExactDiscreteKCenter(
    const metric::MetricSpace& space, const std::vector<metric::SiteId>& sites,
    const std::vector<metric::SiteId>& candidates, size_t k,
    const BruteForceOptions& options = {});

/// Number of k-subsets of an m-set, saturating at uint64 max.
uint64_t BinomialCount(uint64_t m, uint64_t k);

/// Writes into *out the k-subset of {0, ..., m-1} with lexicographic
/// rank `rank` (the order the combination odometer enumerates:
/// {0,1,..,k-1} has rank 0, {m-k,..,m-1} rank C(m,k)-1). This is the
/// combinatorial number system unranking that lets workers shard subset
/// enumeration: each shards a contiguous rank range, unranks its start
/// once, and advances the odometer locally. Requires 1 <= k <= m and
/// rank < C(m, k) (and C(m, k) below the uint64 saturation point).
void CombinationFromRank(uint64_t rank, uint64_t m, uint64_t k,
                         std::vector<size_t>* out);

/// Advances the lexicographic combination odometer in place (the shared
/// successor step of every subset enumerator in the repo). Returns
/// false when index was the last combination.
bool NextCombination(std::vector<size_t>* index, size_t m);

}  // namespace solver
}  // namespace ukc

#endif  // UKC_SOLVER_BRUTE_FORCE_H_
