// Minimum enclosing ball (the Euclidean 1-center of certain points).
//
// Two algorithms:
//  * WelzlMinBall     — exact expected-linear-time randomized algorithm
//                       [Welzl 1991], implemented for arbitrary
//                       dimension via circumscribed-ball solves on
//                       affinely independent support sets.
//  * BadoiuClarkson   — (1+eps) core-set iteration [Bădoiu & Clarkson
//                       2003]: O(1/eps^2) farthest-point steps,
//                       dimension-free, for large inputs.

#ifndef UKC_SOLVER_ENCLOSING_BALL_H_
#define UKC_SOLVER_ENCLOSING_BALL_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "geometry/point.h"

namespace ukc {
namespace solver {

/// A ball in R^d.
struct Ball {
  geometry::Point center;
  double radius = 0.0;

  /// Whether p lies inside, with relative slack for round-off.
  bool Contains(const geometry::Point& p, double slack = 1e-9) const;
};

/// Exact minimum enclosing ball via Welzl's algorithm. The input must be
/// non-empty and of uniform dimension. `rng` drives the random
/// permutation that makes the expected runtime linear.
Result<Ball> WelzlMinBall(const std::vector<geometry::Point>& points, Rng& rng);

/// (1+eps)-approximate minimum enclosing ball via Bădoiu–Clarkson
/// core-set iteration: ceil(1/eps^2) iterations, each a farthest-point
/// scan. eps must be in (0, 1].
Result<Ball> BadoiuClarkson(const std::vector<geometry::Point>& points,
                            double eps);

/// The exact smallest ball with all of `support` on its boundary, for an
/// affinely independent support set of size <= d+1 (internal to Welzl,
/// exposed for testing). Degenerate (affinely dependent) supports fail.
Result<Ball> CircumscribedBall(const std::vector<geometry::Point>& support);

}  // namespace solver
}  // namespace ukc

#endif  // UKC_SOLVER_ENCLOSING_BALL_H_
