#include "solver/kmedian_local_search.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/thread_pool.h"
#include "solver/brute_force.h"

namespace ukc {
namespace solver {

namespace {

Status ValidateCostMatrix(const std::vector<std::vector<double>>& cost,
                          size_t k) {
  if (cost.empty() || cost[0].empty()) {
    return Status::InvalidArgument("KMedian: empty cost matrix");
  }
  const size_t m = cost[0].size();
  for (size_t i = 0; i < cost.size(); ++i) {
    if (cost[i].size() != m) {
      return Status::InvalidArgument("KMedian: ragged cost matrix");
    }
    for (double value : cost[i]) {
      if (!(value >= 0.0) || std::isinf(value)) {
        return Status::InvalidArgument(
            "KMedian: costs must be finite and non-negative");
      }
    }
  }
  if (k == 0 || k > m) {
    return Status::InvalidArgument("KMedian: need 1 <= k <= #facilities");
  }
  return Status::OK();
}

// Recomputes assignment and total for an open set.
void Reassign(const std::vector<std::vector<double>>& cost,
              const std::vector<size_t>& open, KMedianSolution* solution) {
  solution->assignment.resize(cost.size());
  solution->total_cost = 0.0;
  for (size_t i = 0; i < cost.size(); ++i) {
    size_t best = open[0];
    for (size_t f : open) {
      if (cost[i][f] < cost[i][best]) best = f;
    }
    solution->assignment[i] = best;
    solution->total_cost += cost[i][best];
  }
}

// Per-client nearest and second-nearest open facility, the incremental
// structure behind the swap scan: evaluating "open with `out` replaced
// by `in`" needs, per client, min(cost[i][in], nearest open facility
// other than `out`) — which is best1 unless out IS the client's best1,
// in which case it is best2. min over a set is exact in floating point,
// so the totals are bitwise identical to the direct rescan of all k
// open facilities, at O(n) per swap instead of O(n·k). Rebuilt in
// O(n·k) after every accepted swap (one swap is accepted per round, so
// the round cost drops from O(k·m·n·k) to O(k·m·n + n·k)).
struct NearestOpenTables {
  std::vector<size_t> best1;  // First argmin in open-vector order.
  std::vector<double> best1_value;
  std::vector<double> best2_value;  // Min over open minus best1.

  void Rebuild(const std::vector<std::vector<double>>& cost,
               const std::vector<size_t>& open) {
    const size_t n = cost.size();
    best1.resize(n);
    best1_value.resize(n);
    best2_value.resize(n);
    for (size_t i = 0; i < n; ++i) {
      size_t b1 = open[0];
      double v1 = cost[i][open[0]];
      double v2 = std::numeric_limits<double>::infinity();
      for (size_t j = 1; j < open.size(); ++j) {
        const double v = cost[i][open[j]];
        if (v < v1) {
          v2 = v1;
          v1 = v;
          b1 = open[j];
        } else {
          v2 = std::min(v2, v);
        }
      }
      best1[i] = b1;
      best1_value[i] = v1;
      best2_value[i] = v2;
    }
  }

  // Total cost of `open` with facility `out` replaced by `in`.
  double SwapCost(const std::vector<std::vector<double>>& cost, size_t out,
                  size_t in) const {
    double total = 0.0;
    for (size_t i = 0; i < cost.size(); ++i) {
      const double alternative = best1[i] == out ? best2_value[i] : best1_value[i];
      total += std::min(cost[i][in], alternative);
    }
    return total;
  }
};

}  // namespace

Result<KMedianSolution> KMedianLocalSearch(
    const std::vector<std::vector<double>>& cost, size_t k,
    const KMedianOptions& options) {
  UKC_RETURN_IF_ERROR(ValidateCostMatrix(cost, k));
  const size_t m = cost[0].size();
  ScopedPool pool(options.pool, options.threads);

  // Greedy start: repeatedly open the facility with the largest
  // marginal gain. Candidate totals are computed in parallel by
  // facility index; the argmin scans them in order afterwards, so the
  // greedy choice is thread-count independent.
  std::vector<size_t> open;
  std::vector<double> best_cost(cost.size(),
                                std::numeric_limits<double>::infinity());
  std::vector<bool> is_open(m, false);
  std::vector<double> totals(m);
  for (size_t round = 0; round < k; ++round) {
    pool->ParallelFor(m, [&](int, size_t f) {
      if (is_open[f]) return;
      double total = 0.0;
      for (size_t i = 0; i < cost.size(); ++i) {
        total += std::min(best_cost[i], cost[i][f]);
      }
      totals[f] = total;
    });
    size_t best_facility = m;
    double best_total = std::numeric_limits<double>::infinity();
    for (size_t f = 0; f < m; ++f) {
      if (is_open[f]) continue;
      if (totals[f] < best_total) {
        best_total = totals[f];
        best_facility = f;
      }
    }
    UKC_CHECK_LT(best_facility, m);
    open.push_back(best_facility);
    is_open[best_facility] = true;
    for (size_t i = 0; i < cost.size(); ++i) {
      best_cost[i] = std::min(best_cost[i], cost[i][best_facility]);
    }
  }

  KMedianSolution solution;
  Reassign(cost, open, &solution);

  // Best-improvement single swaps: each (closed facility, open slot)
  // pair's total is an independent task; the argmin is again an
  // ordered scan over the result matrix. The nearest/second-nearest
  // tables make each task O(n) instead of O(n·k) and are rebuilt once
  // per accepted swap — bitwise identical totals (see NearestOpenTables).
  std::vector<double> swap_totals(k * m);
  NearestOpenTables nearest;
  for (size_t swaps = 0; swaps < options.max_swaps; ++swaps) {
    nearest.Rebuild(cost, open);
    pool->ParallelFor(k * m, [&](int, size_t task) {
      const size_t oi = task / m;
      const size_t in = task % m;
      if (is_open[in]) return;
      swap_totals[task] = nearest.SwapCost(cost, open[oi], in);
    });
    double best_total = solution.total_cost;
    size_t best_out = m;
    size_t best_in = m;
    for (size_t oi = 0; oi < open.size(); ++oi) {
      for (size_t in = 0; in < m; ++in) {
        if (is_open[in]) continue;
        const double total = swap_totals[oi * m + in];
        if (total < best_total) {
          best_total = total;
          best_out = oi;
          best_in = in;
        }
      }
    }
    if (best_in == m ||
        solution.total_cost - best_total <
            options.min_relative_improvement * std::max(1.0, solution.total_cost)) {
      break;
    }
    is_open[open[best_out]] = false;
    is_open[best_in] = true;
    open[best_out] = best_in;
    Reassign(cost, open, &solution);
  }

  std::sort(open.begin(), open.end());
  solution.facilities = std::move(open);
  return solution;
}

Result<KMedianSolution> KMedianExact(const std::vector<std::vector<double>>& cost,
                                     size_t k, uint64_t max_subsets) {
  UKC_RETURN_IF_ERROR(ValidateCostMatrix(cost, k));
  const size_t m = cost[0].size();
  if (BinomialCount(m, k) > max_subsets) {
    return Status::InvalidArgument("KMedianExact: too many subsets");
  }
  std::vector<size_t> index(k);
  for (size_t i = 0; i < k; ++i) index[i] = i;
  KMedianSolution best;
  best.total_cost = std::numeric_limits<double>::infinity();
  std::vector<size_t> open(k);
  while (true) {
    for (size_t i = 0; i < k; ++i) open[i] = index[i];
    KMedianSolution candidate;
    Reassign(cost, open, &candidate);
    if (candidate.total_cost < best.total_cost) {
      candidate.facilities = open;
      best = std::move(candidate);
    }
    if (!NextCombination(&index, m)) break;
  }
  return best;
}

}  // namespace solver
}  // namespace ukc
