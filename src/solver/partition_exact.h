// Exact continuous Euclidean k-center for tiny instances, by
// enumerating all partitions of the points into at most k clusters
// (restricted-growth enumeration, so label permutations are not
// revisited) and taking each cluster's exact minimum enclosing ball.
//
// This is the epsilon = 0 instantiation of the paper's "(1+eps)-
// approximation algorithm for certain points" on instances small enough
// to afford it, and the ground truth against which the experiment
// harness measures every Euclidean approximation ratio.

#ifndef UKC_SOLVER_PARTITION_EXACT_H_
#define UKC_SOLVER_PARTITION_EXACT_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "geometry/point.h"

namespace ukc {
namespace solver {

/// Exact continuous k-center solution over points in R^d.
struct ContinuousKCenterSolution {
  std::vector<geometry::Point> centers;
  double radius = 0.0;
  /// cluster_of[i] = index into centers for point i.
  std::vector<size_t> cluster_of;
};

/// Options for ExactPartitionKCenter.
struct PartitionExactOptions {
  /// Refuses instances whose partition count exceeds this.
  uint64_t max_partitions = 20'000'000;
  uint64_t seed = 17;  // Drives the Welzl shuffles.
};

/// Finds the optimal continuous k-center of `points` exactly. Intended
/// for n <= ~14 with k <= 4; the partition count is checked up front.
Result<ContinuousKCenterSolution> ExactPartitionKCenter(
    const std::vector<geometry::Point>& points, size_t k,
    const PartitionExactOptions& options = {});

/// Number of partitions of n items into at most k non-empty unlabeled
/// blocks (sum of Stirling numbers of the second kind), saturating.
uint64_t PartitionCount(size_t n, size_t k);

}  // namespace solver
}  // namespace ukc

#endif  // UKC_SOLVER_PARTITION_EXACT_H_
