// Shared result types for the deterministic (certain-point) k-center
// solvers.

#ifndef UKC_SOLVER_TYPES_H_
#define UKC_SOLVER_TYPES_H_

#include <string>
#include <vector>

#include "metric/metric_space.h"

namespace ukc {
namespace solver {

/// Output of a deterministic k-center solver: chosen centers (site ids;
/// Euclidean solvers may mint new sites for constructed centers) and the
/// achieved covering radius max_i d(site_i, centers).
struct KCenterSolution {
  std::vector<metric::SiteId> centers;
  double radius = 0.0;
  /// The solver's worst-case guarantee: radius <= factor * optimum.
  /// (2 for Gonzalez/Hochbaum–Shmoys, 1 for exact solvers.) For
  /// heuristic refinement this is the guarantee of its seed solver.
  double approx_factor = 0.0;
  /// Name of the algorithm that produced this solution.
  std::string algorithm;
};

/// Recomputes the covering radius of `centers` for `sites`.
double CoveringRadius(const metric::MetricSpace& space,
                      const std::vector<metric::SiteId>& sites,
                      const std::vector<metric::SiteId>& centers);

}  // namespace solver
}  // namespace ukc

#endif  // UKC_SOLVER_TYPES_H_
