// Hochbaum–Shmoys style threshold algorithm: a 2-approximation for the
// *discrete* k-center problem (centers restricted to the input sites),
// found by binary search over the sorted pairwise distances.
//
// Complements Gonzalez: same factor, but its radius is at most twice the
// best *discrete* radius at every threshold, and the threshold search
// yields the exact critical distance, which the experiment harness uses
// as a lower-bound oracle (opt_discrete >= critical/2... see
// LowerBound()).

#ifndef UKC_SOLVER_HOCHBAUM_SHMOYS_H_
#define UKC_SOLVER_HOCHBAUM_SHMOYS_H_

#include "common/result.h"
#include "metric/metric_space.h"
#include "solver/types.h"

namespace ukc {
namespace solver {

/// Result of the threshold search: the 2-approximate solution plus a
/// certified lower bound on the optimal discrete k-center radius.
struct ThresholdSolution {
  KCenterSolution solution;
  /// Certified lower bound on the *discrete* optimal radius: the optimal
  /// discrete radius is a pairwise distance, and every pairwise distance
  /// below this value was proved infeasible, so opt_discrete >=
  /// lower_bound.
  double lower_bound = 0.0;
  /// Certified lower bound on the *continuous* optimal radius: at the
  /// largest infeasible threshold t the greedy produced k+1 sites
  /// pairwise more than 2t apart, so any k centers (anywhere in the
  /// space) leave some site farther than t: opt_continuous >
  /// continuous_lower_bound.
  double continuous_lower_bound = 0.0;
};

/// Runs the threshold algorithm. O(|sites|^2 log |sites|) time and
/// O(|sites|^2) memory for the distance list; intended for |sites| up to
/// a few thousand.
Result<ThresholdSolution> HochbaumShmoys(const metric::MetricSpace& space,
                                         const std::vector<metric::SiteId>& sites,
                                         size_t k);

}  // namespace solver
}  // namespace ukc

#endif  // UKC_SOLVER_HOCHBAUM_SHMOYS_H_
