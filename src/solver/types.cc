#include "solver/types.h"

#include <algorithm>

namespace ukc {
namespace solver {

double CoveringRadius(const metric::MetricSpace& space,
                      const std::vector<metric::SiteId>& sites,
                      const std::vector<metric::SiteId>& centers) {
  double worst = 0.0;
  for (metric::SiteId s : sites) {
    worst = std::max(worst, space.DistanceToSet(s, centers));
  }
  return worst;
}

}  // namespace solver
}  // namespace ukc
