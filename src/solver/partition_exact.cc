#include "solver/partition_exact.h"

#include <algorithm>
#include <limits>

#include "common/strings.h"
#include "solver/enclosing_ball.h"

namespace ukc {
namespace solver {

using geometry::Point;

uint64_t PartitionCount(size_t n, size_t k) {
  // stirling[j] = S(i, j) for the current i, built incrementally.
  // S(i, j) = j*S(i-1, j) + S(i-1, j-1).
  constexpr uint64_t kMax = std::numeric_limits<uint64_t>::max();
  std::vector<uint64_t> stirling(k + 1, 0);
  stirling[0] = 1;  // S(0,0)=1.
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = std::min(i, k); j >= 1; --j) {
      const uint64_t a = stirling[j];
      const uint64_t b = stirling[j - 1];
      if (a > (kMax - b) / j) return kMax;  // Saturate.
      stirling[j] = j * a + b;
    }
    stirling[0] = 0;
  }
  uint64_t total = 0;
  for (size_t j = 1; j <= k; ++j) {
    if (total > kMax - stirling[j]) return kMax;
    total += stirling[j];
  }
  return total;
}

namespace {

// Restricted-growth-string enumeration with branch-and-bound: maintains
// per-cluster point lists; computes cluster balls only at leaves, but
// prunes using the incremental farthest-pair lower bound (half the
// cluster diameter lower-bounds its enclosing-ball radius).
class PartitionSearch {
 public:
  PartitionSearch(const std::vector<Point>& points, size_t k, uint64_t seed)
      : points_(points), k_(k), rng_(seed) {}

  Result<ContinuousKCenterSolution> Run() {
    best_radius_ = std::numeric_limits<double>::infinity();
    labels_.assign(points_.size(), 0);
    cluster_members_.assign(k_, {});
    cluster_diameter_.assign(k_, 0.0);
    UKC_RETURN_IF_ERROR(Recurse(0, 0));
    ContinuousKCenterSolution solution;
    solution.radius = best_radius_;
    solution.cluster_of = best_labels_;
    // Rebuild the centers from the winning labeling.
    size_t num_clusters = 0;
    for (size_t label : best_labels_) {
      num_clusters = std::max(num_clusters, label + 1);
    }
    for (size_t c = 0; c < num_clusters; ++c) {
      std::vector<Point> members;
      for (size_t i = 0; i < points_.size(); ++i) {
        if (best_labels_[i] == c) members.push_back(points_[i]);
      }
      UKC_ASSIGN_OR_RETURN(Ball ball, WelzlMinBall(members, rng_));
      solution.centers.push_back(ball.center);
    }
    return solution;
  }

 private:
  Status Recurse(size_t i, size_t used) {
    if (i == points_.size()) {
      double radius = 0.0;
      for (size_t c = 0; c < used; ++c) {
        UKC_ASSIGN_OR_RETURN(Ball ball, ClusterBall(c));
        radius = std::max(radius, ball.radius);
        if (radius >= best_radius_) return Status::OK();
      }
      if (radius < best_radius_) {
        best_radius_ = radius;
        best_labels_ = labels_;
      }
      return Status::OK();
    }
    const size_t limit = std::min(used + 1, k_);
    for (size_t c = 0; c < limit; ++c) {
      // Incremental diameter bound: ball radius >= diameter / 2.
      const double saved_diameter = cluster_diameter_[c];
      double diameter = saved_diameter;
      for (size_t member : cluster_members_[c]) {
        diameter = std::max(
            diameter, geometry::Distance(points_[member], points_[i]));
      }
      if (diameter / 2.0 >= best_radius_) continue;

      labels_[i] = c;
      cluster_members_[c].push_back(i);
      cluster_diameter_[c] = diameter;
      UKC_RETURN_IF_ERROR(Recurse(i + 1, std::max(used, c + 1)));
      cluster_members_[c].pop_back();
      cluster_diameter_[c] = saved_diameter;
    }
    return Status::OK();
  }

  Result<Ball> ClusterBall(size_t c) {
    std::vector<Point> members;
    members.reserve(cluster_members_[c].size());
    for (size_t member : cluster_members_[c]) members.push_back(points_[member]);
    return WelzlMinBall(members, rng_);
  }

  const std::vector<Point>& points_;
  const size_t k_;
  Rng rng_;
  double best_radius_ = 0.0;
  std::vector<size_t> labels_;
  std::vector<size_t> best_labels_;
  std::vector<std::vector<size_t>> cluster_members_;
  std::vector<double> cluster_diameter_;
};

}  // namespace

Result<ContinuousKCenterSolution> ExactPartitionKCenter(
    const std::vector<Point>& points, size_t k,
    const PartitionExactOptions& options) {
  if (k == 0) {
    return Status::InvalidArgument("ExactPartitionKCenter: k must be >= 1");
  }
  if (points.empty()) {
    return Status::InvalidArgument("ExactPartitionKCenter: no points");
  }
  const size_t dim = points[0].dim();
  for (const Point& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("ExactPartitionKCenter: mixed dimensions");
    }
  }
  const uint64_t partitions = PartitionCount(points.size(), k);
  if (partitions > options.max_partitions) {
    return Status::InvalidArgument(
        StrFormat("ExactPartitionKCenter: %llu partitions exceeds the limit "
                  "%llu (n=%zu, k=%zu)",
                  static_cast<unsigned long long>(partitions),
                  static_cast<unsigned long long>(options.max_partitions),
                  points.size(), k));
  }
  PartitionSearch search(points, k, options.seed);
  return search.Run();
}

}  // namespace solver
}  // namespace ukc
