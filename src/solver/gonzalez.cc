#include "solver/gonzalez.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "metric/euclidean_space.h"

namespace ukc {
namespace solver {

namespace {

// Farthest-first over a gathered flat coordinate block: one pass per
// round over contiguous memory, no virtual dispatch in the inner loop.
KCenterSolution GonzalezFlat(const metric::EuclideanSpace& space,
                             const std::vector<metric::SiteId>& sites,
                             size_t num_centers, size_t first_index) {
  const size_t dim = space.dim();
  const metric::Norm norm = space.norm();
  std::vector<double> coords;
  space.GatherCoords(sites, &coords);

  KCenterSolution solution;
  solution.algorithm = "gonzalez";
  solution.approx_factor = 2.0;
  solution.centers.reserve(num_centers);

  std::vector<double> nearest(sites.size(),
                              std::numeric_limits<double>::infinity());
  size_t next = first_index;
  for (size_t round = 0; round < num_centers; ++round) {
    solution.centers.push_back(sites[next]);
    const double* center = coords.data() + next * dim;
    double farthest = -1.0;
    size_t farthest_index = 0;
    for (size_t i = 0; i < sites.size(); ++i) {
      const double d =
          metric::NormDistanceKernel(norm, coords.data() + i * dim, center, dim);
      if (d < nearest[i]) nearest[i] = d;
      if (nearest[i] > farthest) {
        farthest = nearest[i];
        farthest_index = i;
      }
    }
    next = farthest_index;
    solution.radius = farthest;
  }
  return solution;
}

}  // namespace

Result<KCenterSolution> Gonzalez(const metric::MetricSpace& space,
                                 const std::vector<metric::SiteId>& sites,
                                 size_t k, const GonzalezOptions& options) {
  if (k == 0) return Status::InvalidArgument("Gonzalez: k must be >= 1");
  if (sites.empty()) return Status::InvalidArgument("Gonzalez: no sites");
  if (options.first_index >= sites.size()) {
    return Status::InvalidArgument("Gonzalez: first_index out of range");
  }
  const size_t num_centers = std::min(k, sites.size());

  const auto* euclidean = dynamic_cast<const metric::EuclideanSpace*>(&space);
  if (euclidean != nullptr) {
    KCenterSolution solution =
        GonzalezFlat(*euclidean, sites, num_centers, options.first_index);
    if (num_centers == sites.size()) solution.radius = 0.0;
    return solution;
  }

  KCenterSolution solution;
  solution.algorithm = "gonzalez";
  solution.approx_factor = 2.0;
  solution.centers.reserve(num_centers);

  // nearest[i] = distance from sites[i] to the closest chosen center.
  std::vector<double> nearest(sites.size(),
                              std::numeric_limits<double>::infinity());
  size_t next = options.first_index;
  for (size_t round = 0; round < num_centers; ++round) {
    const metric::SiteId center = sites[next];
    solution.centers.push_back(center);
    // Relax distances and find the new farthest site in one pass.
    double farthest = -1.0;
    size_t farthest_index = 0;
    for (size_t i = 0; i < sites.size(); ++i) {
      nearest[i] = std::min(nearest[i], space.Distance(sites[i], center));
      if (nearest[i] > farthest) {
        farthest = nearest[i];
        farthest_index = i;
      }
    }
    next = farthest_index;
    solution.radius = farthest;
  }
  if (num_centers == sites.size()) solution.radius = 0.0;
  return solution;
}

}  // namespace solver
}  // namespace ukc
