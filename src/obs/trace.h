// Lightweight trace spans and scoped timers over obs/metrics.h.
//
// A TraceSpan names a region of work; nested spans build a dotted path
// on a thread-local stack ("stream.ingest" inside "solve" records as
// "solve.stream.ingest"). On destruction the span observes its wall
// duration into the histogram `ukc_span_seconds{span="<path>"}` of its
// registry and bumps `ukc_span_total{span="<path>"}` — there is no
// global trace buffer, no id propagation, no sampling: spans ARE
// metrics, which keeps the hot-path cost at two tick reads plus two
// relaxed adds and makes stage latency queryable from the same
// Prometheus surface as every counter.
//
// A ScopedTimer is the span's unlabeled cousin: it times its scope
// into a caller-provided Histogram handle (resolved once at setup, so
// the destructor never touches the registry mutex). Use ScopedTimer on
// per-batch / per-query paths, TraceSpan on per-run stage structure.
//
// Built with -DUKC_OBS=OFF both compile to nothing (the UKC_OBS_SPAN /
// UKC_OBS_TIMER macros expand to a no-op statement).

#ifndef UKC_OBS_TRACE_H_
#define UKC_OBS_TRACE_H_

#include <chrono>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace ukc {
namespace obs {

#if UKC_OBS

namespace internal {

/// Monotonic tick source for interval timing: the TSC on x86-64
/// (constant-rate on any hardware this targets; ~2 ns a read vs
/// ~25 ns for a steady_clock read — the difference between metering
/// a 40 ns cached query invisibly and doubling it), steady_clock
/// elsewhere.
inline uint64_t TimerTicks() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Seconds per TimerTicks tick, calibrated once against steady_clock
/// (~100 µs one-time spin at first conversion; never inside a measured
/// interval — both endpoints are read before any conversion happens).
double SecondsPerTick();

}  // namespace internal

/// Scoped wall-clock timer into a pre-resolved histogram handle.
/// Null histogram = measure-only (ElapsedSeconds still works).
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_(internal::TimerTicks()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Observe(ElapsedSeconds());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  double ElapsedSeconds() const {
    return static_cast<double>(internal::TimerTicks() - start_) *
           internal::SecondsPerTick();
  }

  /// Detaches the histogram: the destructor records nothing. For
  /// error paths that should not pollute a success-latency series.
  void Cancel() { histogram_ = nullptr; }

 private:
  Histogram* histogram_;
  uint64_t start_;
};

/// Named span; see file comment. Spans must be destroyed in LIFO order
/// per thread (scoped usage guarantees it).
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name,
                     MetricsRegistry* registry = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// The calling thread's current dotted span path ("" outside spans).
  static const std::string& CurrentPath();

 private:
  MetricsRegistry* registry_;
  size_t parent_length_;  // Thread path length to restore on close.
  uint64_t start_;
};

#else  // !UKC_OBS

class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram*) {}
  double ElapsedSeconds() const { return 0.0; }
  void Cancel() {}
};

class TraceSpan {
 public:
  explicit TraceSpan(std::string_view, MetricsRegistry* = nullptr) {}
  static const std::string& CurrentPath();
};

#endif  // UKC_OBS

}  // namespace obs
}  // namespace ukc

#if UKC_OBS
#define UKC_OBS_CONCAT_INNER_(a, b) a##b
#define UKC_OBS_CONCAT_(a, b) UKC_OBS_CONCAT_INNER_(a, b)
/// Times the enclosing scope into `histogram` (an obs::Histogram*).
#define UKC_OBS_TIMER(histogram) \
  ::ukc::obs::ScopedTimer UKC_OBS_CONCAT_(ukc_obs_timer_, __LINE__)(histogram)
/// Opens a named span over the enclosing scope (default registry).
#define UKC_OBS_SPAN(name) \
  ::ukc::obs::TraceSpan UKC_OBS_CONCAT_(ukc_obs_span_, __LINE__)(name)
#else
#define UKC_OBS_TIMER(histogram) \
  do {                           \
  } while (false)
#define UKC_OBS_SPAN(name) \
  do {                     \
  } while (false)
#endif

#endif  // UKC_OBS_TRACE_H_
