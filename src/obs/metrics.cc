#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace ukc {
namespace obs {

std::string_view MetricTypeToString(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "unknown";
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  UKC_CHECK_GT(start, 0.0);
  UKC_CHECK_GT(factor, 1.0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

const std::vector<double>& LatencyBuckets() {
  static const std::vector<double>* const kBuckets =
      new std::vector<double>(ExponentialBuckets(1e-6, 2.0, 27));
  return *kBuckets;
}

double HistogramSnapshot::Quantile(double q, bool* overflow) const {
  if (overflow != nullptr) *overflow = false;
  if (count == 0 || counts.empty()) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const uint64_t next = cumulative + counts[b];
    if (static_cast<double>(next) >= target) {
      // The overflow bucket has no upper bound: the quantile is only
      // known to be at least the last finite edge. Report that edge
      // and flag it, so callers surface ">= X" rather than a value
      // that understates the tail.
      if (b >= bounds.size()) {
        if (overflow != nullptr) *overflow = true;
        return bounds.empty() ? 0.0 : bounds.back();
      }
      const double lower = b == 0 ? 0.0 : bounds[b - 1];
      const double upper = bounds[b];
      const double into =
          (target - static_cast<double>(cumulative)) /
          static_cast<double>(counts[b]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, into));
    }
    cumulative = next;
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (other.counts.empty()) return;
  if (counts.empty()) {
    *this = other;
    return;
  }
  UKC_CHECK(bounds == other.bounds)
      << "HistogramSnapshot::MergeFrom: mismatched bucket bounds";
  for (size_t b = 0; b < counts.size(); ++b) counts[b] += other.counts[b];
  count += other.count;
  sum += other.sum;
}

const MetricSnapshot* RegistrySnapshot::Find(std::string_view name) const {
  for (const MetricSnapshot& metric : metrics) {
    if (metric.name == name) return &metric;
  }
  return nullptr;
}

const MetricSnapshot* RegistrySnapshot::Find(std::string_view name,
                                             LabelList labels) const {
  std::sort(labels.begin(), labels.end());
  for (const MetricSnapshot& metric : metrics) {
    if (metric.name == name && metric.labels == labels) return &metric;
  }
  return nullptr;
}

uint64_t RegistrySnapshot::CounterTotal(std::string_view name) const {
  uint64_t total = 0;
  for (const MetricSnapshot& metric : metrics) {
    if (metric.name == name && metric.type == MetricType::kCounter) {
      total += metric.counter_value;
    }
  }
  return total;
}

HistogramSnapshot RegistrySnapshot::HistogramTotal(
    std::string_view name) const {
  HistogramSnapshot total;
  for (const MetricSnapshot& metric : metrics) {
    if (metric.name == name && metric.type == MetricType::kHistogram) {
      total.MergeFrom(metric.histogram);
    }
  }
  return total;
}

#if UKC_OBS

namespace internal {

size_t ShardIndex() {
  static std::atomic<size_t> next_slot{0};
  thread_local const size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

}  // namespace internal

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const internal::ShardCell& cell : shards_) {
    total += cell.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::Reset() {
  for (internal::ShardCell& cell : shards_) {
    cell.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  UKC_CHECK(!bounds_.empty()) << "Histogram: at least one bucket bound";
  UKC_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "Histogram: bounds must ascend";
  // Buckets (bounds + overflow) plus the fixed-point sum slot, padded
  // to whole cache lines so shards do not false-share.
  const size_t slots = bounds_.size() + 2;
  stride_ = (slots + 7) / 8 * 8;
  cells_ = std::vector<std::atomic<uint64_t>>(stride_ * internal::kShards);
}

void Histogram::Observe(double value) {
  const size_t bucket =
      std::upper_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  std::atomic<uint64_t>* shard =
      cells_.data() + internal::ShardIndex() * stride_;
  shard[bucket].fetch_add(1, std::memory_order_relaxed);
  // Commutative integer sum (nanounits): deterministic merged total
  // regardless of which thread observed which value. Negative or NaN
  // observations contribute 0 to the sum but still count.
  const double scaled = value * internal::kSumScale;
  const uint64_t fixed =
      std::isfinite(scaled) && scaled > 0.0
          ? static_cast<uint64_t>(std::llround(scaled))
          : 0;
  shard[bounds_.size() + 1].fetch_add(fixed, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.bounds = bounds_;
  snapshot.counts.assign(bounds_.size() + 1, 0);
  uint64_t sum_fixed = 0;
  for (size_t s = 0; s < internal::kShards; ++s) {
    const std::atomic<uint64_t>* shard = cells_.data() + s * stride_;
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      snapshot.counts[b] += shard[b].load(std::memory_order_relaxed);
    }
    sum_fixed += shard[bounds_.size() + 1].load(std::memory_order_relaxed);
  }
  for (const uint64_t c : snapshot.counts) snapshot.count += c;
  snapshot.sum = static_cast<double>(sum_fixed) / internal::kSumScale;
  return snapshot;
}

void Histogram::Reset() {
  for (std::atomic<uint64_t>& cell : cells_) {
    cell.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* const kDefault = new MetricsRegistry();
  return *kDefault;
}

namespace {

// Identity key of a metric: name plus sorted labels, with separators
// that cannot appear in Prometheus-legal names.
std::string MetricKey(std::string_view name, const LabelList& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key.push_back('\x1f');
    key += k;
    key.push_back('=');
    key += v;
  }
  return key;
}

void AppendLabels(std::string* out, const LabelList& labels,
                  const char* extra_key = nullptr,
                  const std::string& extra_value = "") {
  if (labels.empty() && extra_key == nullptr) return;
  out->push_back('{');
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out->push_back(',');
    first = false;
    *out += k;
    *out += "=\"";
    *out += v;
    out->push_back('"');
  }
  if (extra_key != nullptr) {
    if (!first) out->push_back(',');
    *out += extra_key;
    *out += "=\"";
    *out += extra_value;
    out->push_back('"');
  }
  out->push_back('}');
}

std::string FormatDouble(double value) {
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  std::ostringstream out;
  out.precision(12);
  out << value;
  return out.str();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      std::string_view help,
                                                      LabelList* labels,
                                                      MetricType type) {
  std::sort(labels->begin(), labels->end());
  const std::string key = MetricKey(name, *labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    UKC_CHECK(it->second->type == type)
        << "MetricsRegistry: metric '" << std::string(name)
        << "' re-requested as a different type";
    return it->second;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->help = std::string(help);
  entry->type = type;
  entry->labels = std::move(*labels);
  Entry* raw = entry.get();
  entries_.push_back(std::move(entry));
  index_.emplace(key, raw);
  return raw;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     std::string_view help, LabelList labels) {
  Entry* entry = FindOrCreate(name, help, &labels, MetricType::kCounter);
  if (entry->counter == nullptr) entry->counter.reset(new Counter());
  return entry->counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view help,
                                 LabelList labels) {
  Entry* entry = FindOrCreate(name, help, &labels, MetricType::kGauge);
  if (entry->gauge == nullptr) entry->gauge.reset(new Gauge());
  return entry->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::string_view help,
                                         LabelList labels,
                                         const std::vector<double>& bounds) {
  Entry* entry = FindOrCreate(name, help, &labels, MetricType::kHistogram);
  if (entry->histogram == nullptr) {
    entry->histogram.reset(new Histogram(bounds));
  }
  return entry->histogram.get();
}

MetricSnapshot MetricsRegistry::SnapshotEntry(const Entry& entry) const {
  MetricSnapshot snapshot;
  snapshot.name = entry.name;
  snapshot.help = entry.help;
  snapshot.type = entry.type;
  snapshot.labels = entry.labels;
  switch (entry.type) {
    case MetricType::kCounter:
      snapshot.counter_value = entry.counter->Value();
      break;
    case MetricType::kGauge:
      snapshot.gauge_value = entry.gauge->Value();
      break;
    case MetricType::kHistogram:
      snapshot.histogram = entry.histogram->Snapshot();
      break;
  }
  return snapshot;
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snapshot;
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot.metrics.reserve(entries_.size());
  for (const auto& entry : entries_) {
    snapshot.metrics.push_back(SnapshotEntry(*entry));
  }
  return snapshot;
}

std::string MetricsRegistry::ExportPrometheus() const {
  const RegistrySnapshot snapshot = Snapshot();
  std::string out;
  std::string typed;  // Names already given a HELP/TYPE block.
  for (const MetricSnapshot& metric : snapshot.metrics) {
    const std::string marker = "\x1f" + metric.name + "\x1f";
    if (typed.find(marker) == std::string::npos) {
      typed += marker;
      if (!metric.help.empty()) {
        out += "# HELP " + metric.name + " " + metric.help + "\n";
      }
      out += "# TYPE " + metric.name + " " +
             std::string(MetricTypeToString(metric.type)) + "\n";
    }
    switch (metric.type) {
      case MetricType::kCounter:
        out += metric.name;
        AppendLabels(&out, metric.labels);
        out += " " + std::to_string(metric.counter_value) + "\n";
        break;
      case MetricType::kGauge:
        out += metric.name;
        AppendLabels(&out, metric.labels);
        out += " " + std::to_string(metric.gauge_value) + "\n";
        break;
      case MetricType::kHistogram: {
        const HistogramSnapshot& h = metric.histogram;
        uint64_t cumulative = 0;
        for (size_t b = 0; b < h.counts.size(); ++b) {
          cumulative += h.counts[b];
          const std::string le =
              b < h.bounds.size() ? FormatDouble(h.bounds[b]) : "+Inf";
          out += metric.name + "_bucket";
          AppendLabels(&out, metric.labels, "le", le);
          out += " " + std::to_string(cumulative) + "\n";
        }
        out += metric.name + "_sum";
        AppendLabels(&out, metric.labels);
        out += " " + FormatDouble(h.sum) + "\n";
        out += metric.name + "_count";
        AppendLabels(&out, metric.labels);
        out += " " + std::to_string(h.count) + "\n";
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  const RegistrySnapshot snapshot = Snapshot();
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const MetricSnapshot& metric : snapshot.metrics) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"" + JsonEscape(metric.name) + "\",\"type\":\"" +
           std::string(MetricTypeToString(metric.type)) + "\"";
    if (!metric.labels.empty()) {
      out += ",\"labels\":{";
      bool first_label = true;
      for (const auto& [k, v] : metric.labels) {
        if (!first_label) out.push_back(',');
        first_label = false;
        out += "\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
      }
      out.push_back('}');
    }
    switch (metric.type) {
      case MetricType::kCounter:
        out += ",\"value\":" + std::to_string(metric.counter_value);
        break;
      case MetricType::kGauge:
        out += ",\"value\":" + std::to_string(metric.gauge_value);
        break;
      case MetricType::kHistogram: {
        const HistogramSnapshot& h = metric.histogram;
        out += ",\"count\":" + std::to_string(h.count);
        out += ",\"sum\":" + FormatDouble(h.sum);
        for (const auto& [label, q] :
             {std::pair<const char*, double>{"p50", 0.50},
              {"p95", 0.95},
              {"p99", 0.99}}) {
          bool overflow = false;
          const double value = h.Quantile(q, &overflow);
          out += ",\"" + std::string(label) + "\":" + FormatDouble(value);
          // Overflow-bucket quantiles are lower bounds, not estimates.
          if (overflow) out += ",\"" + std::string(label) + "_lower_bound\":true";
        }
        out += ",\"buckets\":[";
        for (size_t b = 0; b < h.counts.size(); ++b) {
          if (b != 0) out.push_back(',');
          const std::string le =
              b < h.bounds.size() ? FormatDouble(h.bounds[b]) : "\"+Inf\"";
          out += "[" + le + "," + std::to_string(h.counts[b]) + "]";
        }
        out.push_back(']');
        break;
      }
    }
    out.push_back('}');
  }
  out += "]}";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : entries_) {
    switch (entry->type) {
      case MetricType::kCounter:
        entry->counter->Reset();
        break;
      case MetricType::kGauge:
        entry->gauge->Reset();
        break;
      case MetricType::kHistogram:
        entry->histogram->Reset();
        break;
    }
  }
}

size_t MetricsRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

#else  // !UKC_OBS

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* const kDefault = new MetricsRegistry();
  return *kDefault;
}

#endif  // UKC_OBS

}  // namespace obs
}  // namespace ukc
