#include "obs/trace.h"

namespace ukc {
namespace obs {

namespace {

std::string& ThreadPath() {
  thread_local std::string path;
  return path;
}

}  // namespace

#if UKC_OBS

namespace internal {
namespace {

double CalibrateSecondsPerTick() {
#if defined(__x86_64__) || defined(_M_X64)
  // Measure the TSC against steady_clock over a ~100 µs spin: with
  // ~25 ns clock-read granularity that bounds the rate error well
  // under 0.1%, plenty for latency histograms with 2x-wide buckets.
  const auto t0 = std::chrono::steady_clock::now();
  const uint64_t c0 = TimerTicks();
  auto t1 = t0;
  while (t1 - t0 < std::chrono::microseconds(100)) {
    t1 = std::chrono::steady_clock::now();
  }
  const uint64_t c1 = TimerTicks();
  return std::chrono::duration<double>(t1 - t0).count() /
         static_cast<double>(c1 - c0);
#else
  // TimerTicks IS steady_clock here: one tick per clock duration unit.
  return std::chrono::duration<double>(
             std::chrono::steady_clock::duration(1))
      .count();
#endif
}

}  // namespace

double SecondsPerTick() {
  static const double seconds_per_tick = CalibrateSecondsPerTick();
  return seconds_per_tick;
}

}  // namespace internal

TraceSpan::TraceSpan(std::string_view name, MetricsRegistry* registry)
    : registry_(registry != nullptr ? registry : &MetricsRegistry::Default()),
      start_(internal::TimerTicks()) {
  std::string& path = ThreadPath();
  parent_length_ = path.size();
  if (!path.empty()) path.push_back('.');
  path += name;
}

TraceSpan::~TraceSpan() {
  const double seconds =
      static_cast<double>(internal::TimerTicks() - start_) *
      internal::SecondsPerTick();
  std::string& path = ThreadPath();
  registry_
      ->GetHistogram("ukc_span_seconds", "Wall seconds per trace span",
                     {{"span", path}})
      ->Observe(seconds);
  registry_
      ->GetCounter("ukc_span_total", "Completed trace spans",
                   {{"span", path}})
      ->Increment();
  path.resize(parent_length_);
}

const std::string& TraceSpan::CurrentPath() { return ThreadPath(); }

#else  // !UKC_OBS

const std::string& TraceSpan::CurrentPath() { return ThreadPath(); }

#endif  // UKC_OBS

}  // namespace obs
}  // namespace ukc
