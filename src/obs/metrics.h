// Process-wide observability: a metrics registry of counters, gauges
// and fixed-bucket latency histograms, exported as Prometheus text or
// JSON. This is the "which tenant is slow, which stage is hot, how
// often do retries fire" layer for a live process — the online
// counterpart of the offline BENCH_micro.json numbers.
//
// Design stance, mirroring the repo's determinism discipline:
//
//   - Metrics live OUTSIDE fingerprinted state. Nothing here feeds a
//     checkpoint fingerprint, a swap-table epoch, or any other
//     correctness decision; deleting every instrumentation site leaves
//     all answers bitwise unchanged (asserted by tests/obs_test.cc and
//     the serve chaos suite, which compares coreset state with metrics
//     on and the `verify-obs` tree with them compiled out).
//   - Hot-path cost is ONE RELAXED ATOMIC ADD: each metric keeps a
//     small fixed array of cache-line-padded per-thread shards (a
//     thread's stable slot is assigned on first touch), so concurrent
//     increments do not contend. Snapshots merge the shards in fixed
//     registry order with commutative integer arithmetic — a snapshot
//     is deterministic given the same event counts, regardless of
//     which thread observed which event.
//   - A compile gate mirrors fault injection: built with -DUKC_OBS=OFF
//     every class below becomes an inline no-op stub and the UKC_OBS_*
//     macros compile to nothing, so perf-measurement builds carry zero
//     instrumentation. The `verify-obs` CMake target proves tier-1
//     stays green on that path.
//
// Handles returned by MetricsRegistry::Get* are owned by the registry
// and stable for its lifetime; call sites cache them (registration
// takes a mutex, increments never do). Histograms default to
// LatencyBuckets() — 1 µs .. ~67 s exponential — and extract p50/p95/
// p99 by linear interpolation inside the landing bucket. The metric
// inventory lives in docs/operations.md ("Observability").

#ifndef UKC_OBS_METRICS_H_
#define UKC_OBS_METRICS_H_

// Compile-time gate, set by the build (CMake option UKC_OBS, default
// ON). When off, the registry and every handle are inline no-op stubs.
#ifndef UKC_OBS
#define UKC_OBS 1
#endif

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ukc {
namespace obs {

/// True when the build carries instrumentation; tests that assert
/// observed counts GTEST_SKIP themselves when false.
inline constexpr bool kEnabled = UKC_OBS != 0;

/// Label set of one metric: (key, value) pairs, stored sorted by key
/// so {a,b} and {b,a} are one metric.
using LabelList = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

std::string_view MetricTypeToString(MetricType type);

/// Exponential bucket upper bounds: start, start·factor, ... (count
/// bounds; the registry adds the implicit +Inf overflow bucket).
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

/// The default latency ladder: 1 µs .. ~67 s, factor 2 (27 bounds).
/// Wide enough for a shed-path nanosecond count at one end and a
/// checkpointed 10^6-point ingest at the other.
const std::vector<double>& LatencyBuckets();

/// Point-in-time view of one histogram. `counts[i]` is the
/// observations with value <= bounds[i] (non-cumulative per bucket);
/// counts.size() == bounds.size() + 1, the last entry being the +Inf
/// overflow bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;

  /// Quantile estimate (q in [0, 1]) by linear interpolation within
  /// the landing bucket; 0 when empty. When the quantile lands in the
  /// +Inf overflow bucket the true value is unbounded above: the last
  /// finite bound is returned and *overflow (when non-null) is set, so
  /// callers can report "p99 >= X" instead of silently understating
  /// the tail.
  double Quantile(double q, bool* overflow = nullptr) const;
  double Mean() const { return count == 0 ? 0.0 : sum / static_cast<double>(count); }

  /// Folds `other` (same bounds; checked) into this snapshot — the
  /// cross-label aggregation the CLI report uses to merge per-tenant
  /// histograms into one latency distribution.
  void MergeFrom(const HistogramSnapshot& other);
};

/// Point-in-time view of one metric.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  LabelList labels;
  uint64_t counter_value = 0;  // kCounter
  int64_t gauge_value = 0;     // kGauge
  HistogramSnapshot histogram; // kHistogram
};

/// Snapshot of a whole registry, in registration order (the fixed
/// merge order that makes snapshots comparable run to run).
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  /// First metric with this name (any labels), or nullptr.
  const MetricSnapshot* Find(std::string_view name) const;
  /// Metric with exactly these labels, or nullptr. `labels` need not
  /// be pre-sorted.
  const MetricSnapshot* Find(std::string_view name, LabelList labels) const;
  /// Sum of counter_value over every label set of `name`.
  uint64_t CounterTotal(std::string_view name) const;
  /// Merge of every histogram label set of `name` (empty when none).
  HistogramSnapshot HistogramTotal(std::string_view name) const;
};

#if UKC_OBS

namespace internal {

/// Per-thread shard slots. 16 covers the pools this repo runs (worker
/// counts 1..8 plus the serving thread); threads beyond that share
/// slots round-robin — still one relaxed add, just potentially
/// contended.
inline constexpr size_t kShards = 16;

/// The calling thread's stable shard slot (assigned round-robin on
/// first touch).
size_t ShardIndex();

struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};

/// Fixed-point scale of histogram sums: integer nanounits accumulate
/// commutatively, so the merged sum is deterministic given the same
/// observations (a float accumulator would depend on arrival order).
inline constexpr double kSumScale = 1e9;

}  // namespace internal

/// Monotone counter. Add is one relaxed atomic add on the calling
/// thread's shard.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    shards_[internal::ShardIndex()].value.fetch_add(n,
                                                    std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Merged value (shards summed in fixed order).
  uint64_t Value() const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset();

  std::array<internal::ShardCell, internal::kShards> shards_;
};

/// Last-write-wins instantaneous value (queue depths, resident cells).
/// One relaxed atomic store / add.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. Observe is two relaxed atomic adds (bucket
/// count + fixed-point sum) after a branch-free upper-bound search
/// over ~27 bounds.
class Histogram {
 public:
  void Observe(double value);
  /// Observe seconds-scale durations; sugar for stage timers.
  void ObserveSeconds(double seconds) { Observe(seconds); }

  HistogramSnapshot Snapshot() const;

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  void Reset();

  std::vector<double> bounds_;
  // Shard-major layout: slot s owns [s*stride_, s*stride_+buckets]
  // counts plus the fixed-point sum at offset buckets; stride_ is
  // padded to a cache line so shards do not false-share.
  size_t stride_ = 0;
  std::vector<std::atomic<uint64_t>> cells_;
};

/// The registry: named metrics with labels, get-or-create semantics,
/// snapshot/export in registration order. Get* takes a mutex and is
/// called once per handle at setup time; increments through the
/// returned handles never lock. Instantiable so tests and embedded
/// subsystems can meter into a private registry; production code uses
/// the process-wide Default().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (what a null registry knob resolves to
  /// throughout the repo).
  static MetricsRegistry& Default();

  /// Get-or-create. The (name, labels) pair identifies the metric;
  /// re-requesting it returns the same handle. Requesting an existing
  /// metric as a different type is a programmer error (CHECK).
  Counter* GetCounter(std::string_view name, std::string_view help = "",
                      LabelList labels = {});
  Gauge* GetGauge(std::string_view name, std::string_view help = "",
                  LabelList labels = {});
  /// `bounds` must be strictly ascending; it is fixed on first
  /// registration (later calls with different bounds get the original
  /// — bounds are part of the metric's identity contract, not per-call
  /// state).
  Histogram* GetHistogram(std::string_view name, std::string_view help = "",
                          LabelList labels = {},
                          const std::vector<double>& bounds = LatencyBuckets());

  /// Point-in-time snapshot, metrics in registration order.
  RegistrySnapshot Snapshot() const;

  /// Prometheus text exposition format (one # HELP / # TYPE block per
  /// metric name, histogram as cumulative _bucket/_sum/_count series).
  std::string ExportPrometheus() const;
  /// JSON: {"metrics": [...]} with per-histogram bucket arrays and
  /// extracted p50/p95/p99.
  std::string ExportJson() const;

  /// Zeroes every registered metric (handles stay valid). Test hook.
  void Reset();

  size_t NumMetrics() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricType type = MetricType::kCounter;
    LabelList labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* FindOrCreate(std::string_view name, std::string_view help,
                      LabelList* labels, MetricType type);
  MetricSnapshot SnapshotEntry(const Entry& entry) const;

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;  // Registration order.
  std::unordered_map<std::string, Entry*> index_;
};

#else  // !UKC_OBS — inline no-op stubs; wiring code compiles away.

class Counter {
 public:
  void Add(uint64_t = 1) {}
  void Increment() {}
  uint64_t Value() const { return 0; }
};

class Gauge {
 public:
  void Set(int64_t) {}
  void Add(int64_t) {}
  int64_t Value() const { return 0; }
};

class Histogram {
 public:
  void Observe(double) {}
  void ObserveSeconds(double) {}
  HistogramSnapshot Snapshot() const { return {}; }
  const std::vector<double>& bounds() const { return LatencyBuckets(); }
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Default();

  Counter* GetCounter(std::string_view, std::string_view = "",
                      LabelList = {}) {
    return &counter_;
  }
  Gauge* GetGauge(std::string_view, std::string_view = "", LabelList = {}) {
    return &gauge_;
  }
  Histogram* GetHistogram(std::string_view, std::string_view = "",
                          LabelList = {},
                          const std::vector<double>& = LatencyBuckets()) {
    return &histogram_;
  }

  RegistrySnapshot Snapshot() const { return {}; }
  std::string ExportPrometheus() const {
    return "# ukc observability compiled out (UKC_OBS=0)\n";
  }
  std::string ExportJson() const { return "{\"metrics\":[]}"; }
  void Reset() {}
  size_t NumMetrics() const { return 0; }

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

#endif  // UKC_OBS

}  // namespace obs
}  // namespace ukc

#endif  // UKC_OBS_METRICS_H_
