// Figure D (supplementary): ablation over the paper's central design
// choice — which certain point stands in for each uncertain point —
// crossed with the assignment rule. Also ablates the P̃ candidate
// policy (all sites vs own locations) in finite metrics, the knob that
// trades the Lemma 3.5/3.6 constants for speed.

#include <iostream>

#include "bench/bench_common.h"
#include "common/stopwatch.h"

namespace ukc {
namespace {

double RunConfig(const exper::InstanceSpec& spec,
                 core::SurrogateKind surrogate, cost::AssignmentRule rule,
                 core::OneCenterCandidates candidates, double* millis) {
  auto dataset = exper::MakeInstance(spec);
  UKC_CHECK(dataset.ok()) << dataset.status();
  core::UncertainKCenterOptions options;
  options.k = spec.k;
  options.rule = rule;
  options.surrogate = surrogate;
  options.one_center_candidates = candidates;
  Stopwatch stopwatch;
  auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
  UKC_CHECK(solution.ok()) << solution.status();
  if (millis != nullptr) *millis = stopwatch.ElapsedMillis();
  return solution->expected_cost;
}

int Run() {
  bench::PrintBanner(
      "Figure D — ablation: surrogate kind x assignment rule",
      "P̄/P̃ surrogates (with guarantees) vs modal (without); ED vs "
      "EP/OC rules");

  std::cout << "Euclidean (clustered, n=60, z=4, k=4), expected cost by "
               "configuration:\n";
  TablePrinter euclidean({"surrogate", "ED rule", "EP rule", "OC rule"});
  exper::InstanceSpec spec;
  spec.family = exper::Family::kClustered;
  spec.n = 60;
  spec.z = 4;
  spec.k = 4;
  spec.spread = 1.2;
  spec.seed = 29;
  for (auto surrogate :
       {core::SurrogateKind::kExpectedPoint, core::SurrogateKind::kOneCenter,
        core::SurrogateKind::kModal}) {
    std::vector<std::string> row{core::SurrogateKindToString(surrogate)};
    for (auto rule : {cost::AssignmentRule::kExpectedDistance,
                      cost::AssignmentRule::kExpectedPoint,
                      cost::AssignmentRule::kOneCenter}) {
      row.push_back(TablePrinter::FormatCell(
          RunConfig(spec, surrogate, rule,
                    core::OneCenterCandidates::kAllSites, nullptr)));
    }
    euclidean.AddRow(std::move(row));
  }
  euclidean.Print(std::cout);

  std::cout << "\nFinite metric (grid graph, n=40, z=3, k=3): P̃ candidate "
               "policy ablation (quality vs construction cost):\n";
  TablePrinter policy({"policy", "EcostOC", "pipeline ms"});
  exper::InstanceSpec metric_spec;
  metric_spec.family = exper::Family::kGridGraph;
  metric_spec.n = 40;
  metric_spec.z = 3;
  metric_spec.k = 3;
  metric_spec.spread = 2.0;
  metric_spec.seed = 31;
  for (auto [policy_kind, label] :
       {std::pair{core::OneCenterCandidates::kAllSites, "all sites (m=1)"},
        std::pair{core::OneCenterCandidates::kOwnLocations,
                  "own locations (m=2)"}}) {
    double millis = 0.0;
    const double cost_value =
        RunConfig(metric_spec, core::SurrogateKind::kOneCenter,
                  cost::AssignmentRule::kOneCenter, policy_kind, &millis);
    policy.AddRowValues(label, cost_value, millis);
  }
  policy.Print(std::cout);

  std::cout << "\nCertain-solver ablation (clustered, n=60, z=4, k=4), ED "
               "rule, expected cost and certified factor:\n";
  TablePrinter solvers({"certain solver", "EcostED", "certified factor"});
  for (auto [kind, label] :
       {std::pair{solver::CertainSolverKind::kGonzalez, "gonzalez"},
        std::pair{solver::CertainSolverKind::kHochbaumShmoys,
                  "hochbaum-shmoys"},
        std::pair{solver::CertainSolverKind::kGonzalezRefined,
                  "gonzalez+refine"}}) {
    auto dataset = exper::MakeInstance(spec);
    UKC_CHECK(dataset.ok());
    core::UncertainKCenterOptions options;
    options.k = spec.k;
    options.rule = cost::AssignmentRule::kExpectedDistance;
    options.certain.kind = kind;
    auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
    UKC_CHECK(solution.ok()) << solution.status();
    solvers.AddRowValues(label, solution->expected_cost,
                         solution->bounds.empty()
                             ? 0.0
                             : solution->bounds.front().factor);
  }
  solvers.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
