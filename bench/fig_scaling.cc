// Figure A (supplementary; the paper reports no figures): running-time
// scaling of the Gonzalez ED pipeline in each input parameter — n
// (points), z (locations per point), k (centers), d (dimension). The
// paper's claim is O(nz + n log k) after the O(nz) surrogate pass; our
// Gonzalez is O(nz + nk), so the series should be near-linear in n, z,
// and k.

#include <iostream>

#include "bench/bench_common.h"

namespace ukc {
namespace {

double RunOnce(size_t n, size_t z, size_t k, size_t dim) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kClustered;
  spec.n = n;
  spec.z = z;
  spec.dim = dim;
  spec.k = k;
  spec.seed = 7;
  auto dataset = exper::MakeInstance(spec);
  UKC_CHECK(dataset.ok()) << dataset.status();
  core::UncertainKCenterOptions options;
  options.k = k;
  options.rule = cost::AssignmentRule::kExpectedDistance;
  auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
  UKC_CHECK(solution.ok()) << solution.status();
  // Report the algorithm time (surrogate + clustering + assignment);
  // the exact cost evaluation is our measurement apparatus, not part of
  // the paper's algorithm.
  const auto& t = solution->timings;
  return (t.surrogate_seconds + t.clustering_seconds + t.assignment_seconds) *
         1e3;
}

int Run() {
  bench::PrintBanner(
      "Figure A — running-time scaling of the Gonzalez ED pipeline",
      "O(nz) surrogates + O(nk) clustering + O(nzk) assignment: "
      "near-linear series in each parameter");

  std::cout << "Series 1: vary n (z=4, k=8, d=2)\n";
  TablePrinter by_n({"n", "ms"});
  for (size_t n : {500u, 1000u, 2000u, 4000u, 8000u, 16000u}) {
    by_n.AddRowValues(static_cast<int>(n), RunOnce(n, 4, 8, 2));
  }
  by_n.Print(std::cout);

  std::cout << "\nSeries 2: vary z (n=2000, k=8, d=2)\n";
  TablePrinter by_z({"z", "ms"});
  for (size_t z : {2u, 4u, 8u, 16u, 32u}) {
    by_z.AddRowValues(static_cast<int>(z), RunOnce(2000, z, 8, 2));
  }
  by_z.Print(std::cout);

  std::cout << "\nSeries 3: vary k (n=2000, z=4, d=2)\n";
  TablePrinter by_k({"k", "ms"});
  for (size_t k : {2u, 4u, 8u, 16u, 32u, 64u}) {
    by_k.AddRowValues(static_cast<int>(k), RunOnce(2000, 4, k, 2));
  }
  by_k.Print(std::cout);

  std::cout << "\nSeries 4: vary d (n=2000, z=4, k=8)\n";
  TablePrinter by_d({"d", "ms"});
  for (size_t dim : {1u, 2u, 4u, 8u, 16u}) {
    by_d.AddRowValues(static_cast<int>(dim), RunOnce(2000, 4, 8, dim));
  }
  by_d.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
