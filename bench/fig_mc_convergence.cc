// Figure G (methodology): convergence of the Monte-Carlo estimator to
// the exact CDF-sweep value. Validates the measurement apparatus every
// other experiment relies on: the exact value sits inside the shrinking
// confidence band at every sample count, and the error decays as
// 1/sqrt(samples).

#include <cmath>
#include <iostream>

#include "bench/bench_common.h"
#include "cost/expected_cost.h"

namespace ukc {
namespace {

int Run() {
  bench::PrintBanner(
      "Figure G — Monte-Carlo convergence to the exact expected cost",
      "|MC - exact| < 4 std errors at every sample count; error ~ "
      "1/sqrt(samples)");

  exper::InstanceSpec spec;
  spec.family = exper::Family::kOutlier;  // Heavy tails stress the max.
  spec.n = 60;
  spec.z = 4;
  spec.k = 4;
  spec.seed = 53;
  auto dataset = exper::MakeInstance(spec);
  UKC_CHECK(dataset.ok());
  core::UncertainKCenterOptions options;
  options.k = spec.k;
  auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
  UKC_CHECK(solution.ok());
  const double exact = solution->expected_cost;
  std::cout << "Exact expected cost (CDF sweep): " << exact << "\n\n";

  TablePrinter table({"samples", "MC mean", "std error", "|error|",
                      "error/stderr", "within 4 sigma"});
  bool all_ok = true;
  Rng rng(54);
  for (int64_t samples : {100, 1000, 10000, 100000, 1000000}) {
    auto estimate = cost::MonteCarloAssignedCost(
        *dataset, solution->assignment, samples, rng);
    UKC_CHECK(estimate.ok());
    const double error = std::abs(estimate->mean - exact);
    const double sigmas =
        estimate->std_error > 0 ? error / estimate->std_error : 0.0;
    const bool ok = sigmas <= 4.0;
    all_ok = all_ok && ok;
    table.AddRowValues(static_cast<long long>(samples), estimate->mean,
                       estimate->std_error, error, sigmas, ok ? "yes" : "NO");
  }
  table.Print(std::cout);
  std::cout << (all_ok
                    ? "\nEstimator consistent with the exact sweep at every "
                      "sample count.\n"
                    : "\nESTIMATOR INCONSISTENCY DETECTED\n");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
