// Table 1, rows 6-7: unrestricted assigned k-center in Euclidean space.
//
//   row 6: Gonzalez-plugged pipeline (f = 2), O(nz + n log k), factor 4
//          (EP rule; Theorem 2.5 with f = 2)
//   row 7: (1+eps)-plugged pipeline, factor 3 + eps
//
// The pipeline's restricted solutions are compared against the exact
// *unrestricted* optimum (centers and assignment both enumerated) on
// tiny instances, and against the certified instance lower bound on
// larger ones.

#include <iostream>

#include "bench/bench_common.h"

namespace ukc {
namespace {

int Run() {
  bench::PrintBanner(
      "Table 1, rows 6-7 — unrestricted assigned k-center, Euclidean",
      "factor 4 with Gonzalez (f=2); factor 3+eps with a (1+eps) solver "
      "(Theorems 2.4/2.5)");

  TablePrinter table({"certain solver", "claimed", "family", "ratio mean",
                      "ratio max", "ok", "ms/instance"});
  bool all_ok = true;
  struct Config {
    solver::CertainSolverKind kind;
    double claimed;
    const char* label;
  };
  for (const Config& config :
       {Config{solver::CertainSolverKind::kGonzalez, 4.0, "gonzalez (f=2)"},
        Config{solver::CertainSolverKind::kExact, 3.0, "exact (f=1, eps=0)"},
        Config{solver::CertainSolverKind::kGridEpsilon, 3.25,
               "grid-eps (f=1.25)"}}) {
    for (auto family : {exper::Family::kUniform, exper::Family::kClustered,
                        exper::Family::kOutlier}) {
      RunningStats ratios;
      RunningStats times;
      for (uint64_t seed = 1; seed <= 8; ++seed) {
        exper::InstanceSpec spec;
        spec.family = family;
        spec.n = 5;
        spec.z = 2;
        spec.dim = 2;
        spec.k = 2;
        spec.spread = 0.8;
        spec.seed = seed;
        core::UncertainKCenterOptions options;
        options.k = spec.k;
        options.rule = cost::AssignmentRule::kExpectedPoint;
        options.certain.kind = config.kind;
        auto sample = bench::MeasureAgainstTinyUnrestricted(spec, options);
        UKC_CHECK(sample.ok()) << sample.status();
        ratios.Add(sample->ratio);
        times.Add(sample->seconds * 1e3);
      }
      const bool ok = ratios.Max() <= config.claimed + 1e-9;
      all_ok = all_ok && ok;
      table.AddRowValues(config.label, config.claimed,
                         exper::FamilyToString(family), ratios.Mean(),
                         ratios.Max(), ok ? "yes" : "NO", times.Mean());
    }
  }
  table.Print(std::cout);

  // Larger instances: ratio against the certified lower bound. These
  // ratios overstate the true ratio (the bound is below the optimum) but
  // confirm the constant-factor behaviour at scale.
  std::cout << "\nRatio vs certified lower bound at larger scale "
               "(overstates the true ratio):\n";
  TablePrinter large({"family", "n", "k", "EcostEP", "lower bound",
                      "cost/LB"});
  for (auto family : {exper::Family::kUniform, exper::Family::kClustered}) {
    for (size_t n : {100u, 400u}) {
      exper::InstanceSpec spec;
      spec.family = family;
      spec.n = n;
      spec.z = 4;
      spec.k = 5;
      spec.spread = 1.0;
      spec.seed = 13;
      core::UncertainKCenterOptions options;
      options.k = spec.k;
      options.rule = cost::AssignmentRule::kExpectedPoint;
      auto sample = bench::MeasureAgainstLowerBound(spec, options);
      UKC_CHECK(sample.ok()) << sample.status();
      large.AddRowValues(exper::FamilyToString(family), static_cast<int>(n),
                         static_cast<int>(spec.k), sample->algorithm_cost,
                         sample->reference, sample->ratio);
    }
  }
  large.Print(std::cout);
  std::cout << (all_ok ? "\nAll measured ratios within the claimed factors.\n"
                       : "\nBOUND VIOLATION DETECTED\n");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
