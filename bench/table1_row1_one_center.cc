// Table 1, row 1: "1-center, Euclidean, O(z), factor 2" (Theorem 2.1).
//
// The expected point P̄_1 of the first uncertain point is a 2-approximate
// 1-center. This bench measures the empirical ratio
// Ecost(P̄_1) / Ecost(reference) across instance families, where the
// reference center is the best of a dense candidate set refined by
// convex compass search (an upper bound on the optimum — measured
// ratios are therefore lower bounds on the true ratios; the claim check
// is still valid because the theorem implies ratio <= 2 against any
// upper-bound reference).

#include <iostream>

#include "bench/bench_common.h"
#include "cost/expected_cost.h"
#include "core/surrogates.h"

namespace ukc {
namespace {

Result<bench::RatioSample> MeasureOneCenter(const exper::InstanceSpec& spec) {
  UKC_ASSIGN_OR_RETURN(uncertain::UncertainDataset dataset,
                       exper::MakeInstance(spec));
  Stopwatch stopwatch;
  UKC_ASSIGN_OR_RETURN(metric::SiteId p_bar,
                       core::ExpectedPointOneCenter(&dataset, 0));
  bench::RatioSample sample;
  sample.seconds = stopwatch.ElapsedSeconds();
  UKC_ASSIGN_OR_RETURN(sample.algorithm_cost,
                       cost::ExactUnassignedCost(dataset, {p_bar}));

  // Reference: best candidate site, then continuous refinement.
  UKC_ASSIGN_OR_RETURN(std::vector<metric::SiteId> candidates,
                       core::DefaultCandidateSites(&dataset));
  double best = 1e300;
  metric::SiteId best_site = candidates[0];
  for (metric::SiteId c : candidates) {
    UKC_ASSIGN_OR_RETURN(double value, cost::ExactUnassignedCost(dataset, {c}));
    if (value < best) {
      best = value;
      best_site = c;
    }
  }
  UKC_ASSIGN_OR_RETURN(
      geometry::Point refined,
      core::RefineOneCenterContinuous(
          dataset, dataset.euclidean()->point(best_site), /*initial_step=*/1.0));
  UKC_ASSIGN_OR_RETURN(double refined_value,
                       core::OneCenterObjectiveAt(dataset, refined));
  sample.reference = std::min(best, refined_value);
  sample.ratio = sample.algorithm_cost / sample.reference;
  return sample;
}

int Run() {
  bench::PrintBanner(
      "Table 1, row 1 — 1-center in Euclidean space via the expected point",
      "Ecost(P_bar_1) <= 2 * OPT (Theorem 2.1), surrogate built in O(z)");

  TablePrinter table({"family", "n", "z", "dim", "ratio mean", "ratio max",
                      "claim", "ok", "ms/instance"});
  bool all_ok = true;
  for (auto family : {exper::Family::kUniform, exper::Family::kClustered,
                      exper::Family::kOutlier, exper::Family::kLine}) {
    for (size_t dim : {1u, 2u, 3u}) {
      if (family == exper::Family::kLine && dim != 1) continue;
      if (family != exper::Family::kLine && dim == 1) continue;
      RunningStats ratios;
      RunningStats times;
      for (uint64_t seed = 1; seed <= 12; ++seed) {
        exper::InstanceSpec spec;
        spec.family = family;
        spec.n = 12;
        spec.z = 4;
        spec.dim = dim;
        spec.k = 1;
        spec.spread = 1.0;
        spec.seed = seed;
        auto sample = MeasureOneCenter(spec);
        UKC_CHECK(sample.ok()) << sample.status();
        ratios.Add(sample->ratio);
        times.Add(sample->seconds * 1e3);
      }
      const bool ok = ratios.Max() <= 2.0 + 1e-9;
      all_ok = all_ok && ok;
      table.AddRowValues(exper::FamilyToString(family), 12, 4,
                         static_cast<int>(dim), ratios.Mean(), ratios.Max(),
                         2.0, ok ? "yes" : "NO", times.Mean());
    }
  }
  table.Print(std::cout);
  std::cout << (all_ok ? "\nAll measured ratios within the claimed factor 2.\n"
                       : "\nBOUND VIOLATION DETECTED\n");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
