// Table 1, row 9: unrestricted assigned k-center in an arbitrary metric
// space. The paper's table states 5+eps; the underlying Theorem 2.7
// proves Ecost_OC <= (3+2f) OPT = (5+2eps) OPT with an f = (1+eps)
// certain solver (we flag this one-character discrepancy of the paper in
// EXPERIMENTS.md and check the theorem's 3+2f).
//
// Substrate: shortest-path metrics of random-weight grid graphs. In a
// finite metric the enumeration reference is the TRUE optimum (centers
// must be sites), so these ratio checks are exact.

#include <iostream>

#include "bench/bench_common.h"

namespace ukc {
namespace {

int Run() {
  bench::PrintBanner(
      "Table 1, row 9 — unrestricted assigned k-center, general metric",
      "factor 3+2f: 5 with exact plug (f=1), 7 with Gonzalez (f=2) "
      "(Theorem 2.7); ED variant 5+2f (Theorem 2.6)");

  TablePrinter table({"rule", "certain solver", "claimed", "ratio mean",
                      "ratio max", "ok", "ms/instance"});
  bool all_ok = true;
  struct Config {
    cost::AssignmentRule rule;
    solver::CertainSolverKind kind;
    double claimed;
    const char* label;
  };
  for (const Config& config :
       {Config{cost::AssignmentRule::kOneCenter,
               solver::CertainSolverKind::kExact, 5.0, "exact (f=1)"},
        Config{cost::AssignmentRule::kOneCenter,
               solver::CertainSolverKind::kGonzalez, 7.0, "gonzalez (f=2)"},
        Config{cost::AssignmentRule::kExpectedDistance,
               solver::CertainSolverKind::kExact, 7.0, "exact (f=1)"},
        Config{cost::AssignmentRule::kExpectedDistance,
               solver::CertainSolverKind::kGonzalez, 9.0, "gonzalez (f=2)"}}) {
    RunningStats ratios;
    RunningStats times;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      exper::InstanceSpec spec;
      spec.family = exper::Family::kGridGraph;
      spec.n = 5;
      spec.z = 2;
      spec.k = 2;
      spec.spread = 1.0;
      spec.seed = seed;
      core::UncertainKCenterOptions options;
      options.k = spec.k;
      options.rule = config.rule;
      options.surrogate = core::SurrogateKind::kOneCenter;
      options.certain.kind = config.kind;
      auto sample = bench::MeasureAgainstTinyUnrestricted(spec, options);
      UKC_CHECK(sample.ok()) << sample.status();
      ratios.Add(sample->ratio);
      times.Add(sample->seconds * 1e3);
    }
    const bool ok = ratios.Max() <= config.claimed + 1e-9;
    all_ok = all_ok && ok;
    table.AddRowValues(cost::AssignmentRuleToString(config.rule), config.label,
                       config.claimed, ratios.Mean(), ratios.Max(),
                       ok ? "yes" : "NO", times.Mean());
  }
  table.Print(std::cout);

  // Larger graphs against the certified lower bound.
  std::cout << "\nRatio vs certified lower bound on larger graphs "
               "(overstates the true ratio):\n";
  TablePrinter large({"n", "|V|", "k", "EcostOC", "lower bound", "cost/LB"});
  for (size_t n : {40u, 80u}) {
    exper::InstanceSpec spec;
    spec.family = exper::Family::kGridGraph;
    spec.n = n;
    spec.z = 3;
    spec.k = 4;
    spec.spread = 2.0;
    spec.seed = 5;
    auto dataset = exper::MakeInstance(spec);
    UKC_CHECK(dataset.ok());
    const int num_vertices = dataset->space().num_sites();
    core::UncertainKCenterOptions options;
    options.k = spec.k;
    options.rule = cost::AssignmentRule::kOneCenter;
    auto sample = bench::MeasureAgainstLowerBound(spec, options);
    UKC_CHECK(sample.ok()) << sample.status();
    large.AddRowValues(static_cast<int>(n), num_vertices,
                       static_cast<int>(spec.k), sample->algorithm_cost,
                       sample->reference, sample->ratio);
  }
  large.Print(std::cout);
  std::cout << (all_ok ? "\nAll measured ratios within the claimed factors.\n"
                       : "\nBOUND VIOLATION DETECTED\n");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
