// Figure H (supplementary): the unassigned objective. How close do the
// paper's (assigned) pipeline centers come to the unassigned optimum,
// and how much does exact-objective local search recover?

#include <iostream>

#include "bench/bench_common.h"
#include "core/unassigned.h"

namespace ukc {
namespace {

int Run() {
  bench::PrintBanner(
      "Figure H — the unassigned version: pipeline vs local search vs exact",
      "OPT_unassigned <= OPT_unrestricted, so the pipeline centers carry "
      "over; local search on the exact objective closes most of the gap");

  std::cout << "Tiny instances (exact unassigned optimum over the dense "
               "candidate set):\n";
  TablePrinter tiny({"family", "pipeline/exact mean", "pipeline/exact max",
                     "search/exact mean", "search/exact max", "mean swaps"});
  for (auto family : {exper::Family::kUniform, exper::Family::kClustered,
                      exper::Family::kGridGraph}) {
    RunningStats pipeline_ratio;
    RunningStats search_ratio;
    RunningStats swaps;
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      exper::InstanceSpec spec;
      spec.family = family;
      spec.n = 5;
      spec.z = 2;
      spec.k = 2;
      spec.seed = seed;
      auto dataset = exper::MakeInstance(spec);
      UKC_CHECK(dataset.ok());

      core::UncertainKCenterOptions pipeline_options;
      pipeline_options.k = 2;
      pipeline_options.evaluate_unassigned = true;
      if (!dataset->is_euclidean()) {
        pipeline_options.rule = cost::AssignmentRule::kOneCenter;
      }
      auto pipeline =
          core::SolveUncertainKCenter(&dataset.value(), pipeline_options);
      UKC_CHECK(pipeline.ok());

      auto candidates = core::DefaultCandidateSites(&dataset.value());
      UKC_CHECK(candidates.ok());
      auto exact = core::ExactUnassignedTiny(*dataset, 2, *candidates);
      UKC_CHECK(exact.ok()) << exact.status();

      core::UnassignedSearchOptions search_options;
      search_options.k = 2;
      search_options.candidates = *candidates;
      if (!dataset->is_euclidean()) {
        search_options.pipeline.rule = cost::AssignmentRule::kOneCenter;
      }
      auto search = core::LocalSearchUnassigned(&dataset.value(), search_options);
      UKC_CHECK(search.ok()) << search.status();

      pipeline_ratio.Add(pipeline->unassigned_cost / exact->expected_cost);
      search_ratio.Add(search->expected_cost / exact->expected_cost);
      swaps.Add(static_cast<double>(search->swaps));
    }
    tiny.AddRowValues(exper::FamilyToString(family), pipeline_ratio.Mean(),
                      pipeline_ratio.Max(), search_ratio.Mean(),
                      search_ratio.Max(), swaps.Mean());
  }
  tiny.Print(std::cout);

  std::cout << "\nMid-size instances (no exact reference; improvement of the "
               "swap search over the pipeline seed):\n";
  TablePrinter mid({"family", "n", "pipeline unassigned", "after search",
                    "improvement", "swaps"});
  for (auto family : {exper::Family::kClustered, exper::Family::kOutlier}) {
    exper::InstanceSpec spec;
    spec.family = family;
    spec.n = 40;
    spec.z = 3;
    spec.k = 4;
    spec.spread = 1.5;
    spec.seed = 9;
    auto dataset = exper::MakeInstance(spec);
    UKC_CHECK(dataset.ok());
    core::UncertainKCenterOptions pipeline_options;
    pipeline_options.k = 4;
    pipeline_options.evaluate_unassigned = true;
    auto pipeline =
        core::SolveUncertainKCenter(&dataset.value(), pipeline_options);
    UKC_CHECK(pipeline.ok());
    core::UnassignedSearchOptions search_options;
    search_options.k = 4;
    auto search = core::LocalSearchUnassigned(&dataset.value(), search_options);
    UKC_CHECK(search.ok());
    mid.AddRowValues(exper::FamilyToString(family), static_cast<int>(spec.n),
                     pipeline->unassigned_cost, search->expected_cost,
                     1.0 - search->expected_cost / pipeline->unassigned_cost,
                     static_cast<int>(search->swaps));
  }
  mid.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
