// Google-benchmark micro-benchmarks for the library's hot paths:
// surrogate construction, deterministic clustering, assignment, exact
// cost evaluation, multi-candidate (batch / swap-sweep) evaluation,
// sampling, and enclosing balls.
//
// The custom main records provenance context into the JSON output
// (git SHA via UKC_GIT_SHA — exported by bench/run_bench.sh — plus the
// machine's hardware thread count and the dataset sizes exercised), so
// the perf trajectory in BENCH_micro.json stays attributable across
// PRs and machines.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <thread>

#include "common/check.h"
#include "common/deadline.h"
#include "common/fault_injection.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/registry.h"
#include "core/surrogates.h"
#include "core/unassigned.h"
#include "cost/assignment.h"
#include "cost/expected_cost.h"
#include "cost/parallel_evaluator.h"
#include "exper/instances.h"
#include "solver/enclosing_ball.h"
#include "solver/geometric_median.h"
#include "solver/gonzalez.h"
#include "stream/checkpoint.h"
#include "stream/coreset.h"
#include "stream/ingest.h"
#include "stream/pipeline.h"
#include "uncertain/sampler.h"

namespace ukc {
namespace {

uncertain::UncertainDataset MakeDataset(size_t n, size_t z = 4,
                                        size_t dim = 2) {
  exper::InstanceSpec spec;
  spec.family = exper::Family::kClustered;
  spec.n = n;
  spec.z = z;
  spec.dim = dim;
  spec.k = 8;
  spec.seed = 42;
  return std::move(exper::MakeInstance(spec)).value();
}

void BM_ExpectedPointSurrogates(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto dataset = MakeDataset(n);
    core::SurrogateOptions options;
    options.kind = core::SurrogateKind::kExpectedPoint;
    state.ResumeTiming();
    auto surrogates = core::BuildSurrogates(&dataset, options);
    benchmark::DoNotOptimize(surrogates);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ExpectedPointSurrogates)->Arg(1000)->Arg(4000)->Arg(16000);

void BM_GeometricMedianSurrogates(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto dataset = MakeDataset(n);
    core::SurrogateOptions options;
    options.kind = core::SurrogateKind::kOneCenter;
    state.ResumeTiming();
    auto surrogates = core::BuildSurrogates(&dataset, options);
    benchmark::DoNotOptimize(surrogates);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_GeometricMedianSurrogates)->Arg(1000)->Arg(4000);

void BM_Gonzalez(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  auto dataset = MakeDataset(n, 1);
  const auto sites = dataset.LocationSites();
  for (auto _ : state) {
    auto solution = solver::Gonzalez(dataset.space(), sites, k);
    benchmark::DoNotOptimize(solution);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n * k));
}
BENCHMARK(BM_Gonzalez)
    ->Args({1000, 8})
    ->Args({4000, 8})
    ->Args({16000, 8})
    ->Args({4000, 32});

void BM_AssignExpectedDistance(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto dataset = MakeDataset(n);
  const auto sites = dataset.LocationSites();
  auto centers = solver::Gonzalez(dataset.space(), sites, 8);
  for (auto _ : state) {
    auto assignment = cost::AssignExpectedDistance(dataset, centers->centers);
    benchmark::DoNotOptimize(assignment);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_AssignExpectedDistance)->Arg(1000)->Arg(4000)->Arg(10000);

void BM_ExactExpectedCost(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto dataset = MakeDataset(n);
  const auto sites = dataset.LocationSites();
  auto centers = solver::Gonzalez(dataset.space(), sites, 8);
  auto assignment = cost::AssignExpectedDistance(dataset, centers->centers);
  for (auto _ : state) {
    auto value = cost::ExactAssignedCost(dataset, *assignment);
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.total_locations()));
}
BENCHMARK(BM_ExactExpectedCost)->Arg(1000)->Arg(4000)->Arg(10000)->Arg(16000);

// The single exact sweep at scale: the serial reference
// (Options::parallel_sweep = false — the pre-PR-5 sort-sweep) vs the
// segmented engine (parallel radix + per-variable CDF trajectories +
// ordered serial combine). On this 1-CPU container the parallel run
// measures the engine's algorithmic effect (cache-friendly combine, no
// divides in the dependent chain); wall-clock thread scaling needs a
// many-core box. Outputs are bitwise identical either way
// (tests/parallel_sweep_test.cc).
void ExactSweepAtScale(benchmark::State& state, bool parallel) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto dataset = MakeDataset(n);
  const auto sites = dataset.LocationSites();
  auto centers = solver::Gonzalez(dataset.space(), sites, 8);
  ThreadPool pool(parallel ? 0 : 1);
  cost::ExpectedCostEvaluator::Options options;
  options.parallel_sweep = parallel;
  options.sweep_pool = parallel ? &pool : nullptr;
  cost::ExpectedCostEvaluator evaluator(options);
  for (auto _ : state) {
    auto value = evaluator.UnassignedCost(dataset, centers->centers);
    UKC_CHECK(value.ok()) << value.status();
    benchmark::DoNotOptimize(value);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(dataset.total_locations()));
}

void BM_ExactSweepSerial(benchmark::State& state) {
  ExactSweepAtScale(state, /*parallel=*/false);
}
BENCHMARK(BM_ExactSweepSerial)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

void BM_ExactSweepParallel(benchmark::State& state) {
  ExactSweepAtScale(state, /*parallel=*/true);
}
BENCHMARK(BM_ExactSweepParallel)
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// The kd-tree cutover study behind cost::kDefaultKdTreeCutover: the
// unassigned cost over k centers with the kd path forced off (linear
// flat scan) and forced on (tree). The default cutover is the k where
// the tree rows start winning.
void BM_UnassignedCostLinear(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  auto dataset = MakeDataset(n);
  const auto sites = dataset.LocationSites();
  auto centers = solver::Gonzalez(dataset.space(), sites, k);
  cost::ExpectedCostEvaluator::Options options;
  options.kdtree_cutover = std::numeric_limits<size_t>::max();
  cost::ExpectedCostEvaluator evaluator(options);
  for (auto _ : state) {
    auto value = evaluator.UnassignedCost(dataset, centers->centers);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_UnassignedCostLinear)
    ->Args({4000, 8})
    ->Args({4000, 16})
    ->Args({4000, 24})
    ->Args({4000, 32})
    ->Args({4000, 48})
    ->Args({4000, 64});

void BM_UnassignedCostKdTree(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t k = static_cast<size_t>(state.range(1));
  auto dataset = MakeDataset(n);
  const auto sites = dataset.LocationSites();
  auto centers = solver::Gonzalez(dataset.space(), sites, k);
  cost::ExpectedCostEvaluator::Options options;
  options.kdtree_cutover = 1;
  cost::ExpectedCostEvaluator evaluator(options);
  for (auto _ : state) {
    auto value = evaluator.UnassignedCost(dataset, centers->centers);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_UnassignedCostKdTree)
    ->Args({4000, 8})
    ->Args({4000, 16})
    ->Args({4000, 24})
    ->Args({4000, 32})
    ->Args({4000, 48})
    ->Args({4000, 64});

// Batched evaluation of many candidate center sets through one
// evaluator (the PR 1 serial local-search access pattern — the
// single-threaded baseline the parallel/swap paths are measured
// against).
void BM_UnassignedCostBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto dataset = MakeDataset(n);
  const auto sites = dataset.LocationSites();
  auto seed = solver::Gonzalez(dataset.space(), sites, 8);
  std::vector<std::vector<metric::SiteId>> center_sets;
  for (size_t swap = 0; swap < 16; ++swap) {
    auto centers = seed->centers;
    centers[swap % centers.size()] = sites[(swap * 97) % sites.size()];
    center_sets.push_back(std::move(centers));
  }
  cost::ExpectedCostEvaluator evaluator;
  for (auto _ : state) {
    auto values = evaluator.UnassignedCostBatch(dataset, center_sets);
    benchmark::DoNotOptimize(values);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(center_sets.size()));
}
BENCHMARK(BM_UnassignedCostBatch)->Arg(1000)->Arg(4000)->Arg(10000);

// The same 16 candidate sets through the worker-pool batch path.
void BM_ParallelUnassignedCostBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto dataset = MakeDataset(n);
  const auto sites = dataset.LocationSites();
  auto seed = solver::Gonzalez(dataset.space(), sites, 8);
  std::vector<std::vector<metric::SiteId>> center_sets;
  for (size_t swap = 0; swap < 16; ++swap) {
    auto centers = seed->centers;
    centers[swap % centers.size()] = sites[(swap * 97) % sites.size()];
    center_sets.push_back(std::move(centers));
  }
  cost::ParallelCandidateEvaluator::Options options;
  options.threads = threads;
  cost::ParallelCandidateEvaluator parallel(options);
  for (auto _ : state) {
    auto values = parallel.UnassignedCostBatch(dataset, center_sets);
    benchmark::DoNotOptimize(values);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(center_sets.size()));
}
BENCHMARK(BM_ParallelUnassignedCostBatch)
    ->Args({10000, 1})
    ->Args({10000, 8})
    ->Args({100000, 8});

// One local-search round (k = 8 positions × 16 pool candidates = 128
// swapped center sets), scored the PR 1 way: a full exact evaluation
// per swap through one serial evaluator.
void BM_SwapSweepSerial(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto dataset = MakeDataset(n);
  const auto sites = dataset.LocationSites();
  auto seed = solver::Gonzalez(dataset.space(), sites, 8);
  std::vector<metric::SiteId> pool;
  for (size_t i = 0; i < 16; ++i) pool.push_back(sites[(i * 977) % sites.size()]);
  cost::ExpectedCostEvaluator evaluator;
  for (auto _ : state) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t p = 0; p < seed->centers.size(); ++p) {
      auto trial = seed->centers;
      for (metric::SiteId candidate : pool) {
        trial[p] = candidate;
        best = std::min(best, *evaluator.UnassignedCost(dataset, trial));
      }
    }
    benchmark::DoNotOptimize(best);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(8 * pool.size()));
}
BENCHMARK(BM_SwapSweepSerial)->Arg(10000);

// The same round through ParallelCandidateEvaluator::SwapCostMatrix
// with the default (incremental) engine: the centers do not change
// between iterations, so after the first iteration every base table
// rolls over — this measures the steady-state cost of re-scoring a
// round. The from-scratch trajectory costs are in
// BM_SwapSweepRebuildRounds / BM_SwapSweepIncremental below.
void BM_SwapSweepBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  auto dataset = MakeDataset(n);
  const auto sites = dataset.LocationSites();
  auto seed = solver::Gonzalez(dataset.space(), sites, 8);
  std::vector<metric::SiteId> pool;
  for (size_t i = 0; i < 16; ++i) pool.push_back(sites[(i * 977) % sites.size()]);
  cost::ParallelCandidateEvaluator::Options options;
  options.threads = threads;
  cost::ParallelCandidateEvaluator parallel(options);
  for (auto _ : state) {
    auto values = parallel.SwapCostMatrix(dataset, seed->centers, pool);
    benchmark::DoNotOptimize(values);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(8 * pool.size()));
}
BENCHMARK(BM_SwapSweepBatch)
    ->Args({10000, 1})
    ->Args({10000, 8})
    ->Args({100000, 8});

// A ≥3-round local-search trajectory through SwapCostMatrix: round r's
// accepted argmin swap feeds round r+1 — the access pattern of
// LocalSearchUnassigned. Run once with the incremental engine off (the
// PR 2 batch path: full table rebuild + full O(N) candidate scans every
// round) and once with it on (k−1 distance rows and the untouched base
// tables roll over; candidates scan only kd-surviving locations).
void SwapSweepRounds(benchmark::State& state, bool incremental) {
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kRounds = 3;
  auto dataset = MakeDataset(n);
  const auto sites = dataset.LocationSites();
  auto seed = solver::Gonzalez(dataset.space(), sites, 8);
  std::vector<metric::SiteId> pool;
  for (size_t i = 0; i < 16; ++i) pool.push_back(sites[(i * 977) % sites.size()]);
  cost::ParallelCandidateEvaluator::Options options;
  options.threads = 1;
  options.incremental_rollover = incremental;
  options.kd_prune = incremental;
  cost::ParallelCandidateEvaluator parallel(options);
  for (auto _ : state) {
    auto centers = seed->centers;
    for (size_t round = 0; round < kRounds; ++round) {
      auto values = parallel.SwapCostMatrix(dataset, centers, pool);
      UKC_CHECK(values.ok()) << values.status();
      // Accept the (position, candidate) argmin over non-identity swaps.
      double best = std::numeric_limits<double>::infinity();
      size_t best_position = 0;
      metric::SiteId best_candidate = centers[0];
      for (size_t p = 0; p < centers.size(); ++p) {
        for (size_t c = 0; c < pool.size(); ++c) {
          if (pool[c] == centers[p]) continue;
          const double value = (*values)[p * pool.size() + c];
          if (value < best) {
            best = value;
            best_position = p;
            best_candidate = pool[c];
          }
        }
      }
      centers[best_position] = best_candidate;
    }
    benchmark::DoNotOptimize(centers);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kRounds * 8 * pool.size()));
}

void BM_SwapSweepRebuildRounds(benchmark::State& state) {
  SwapSweepRounds(state, /*incremental=*/false);
}
BENCHMARK(BM_SwapSweepRebuildRounds)->Arg(10000)->Unit(benchmark::kMillisecond);

void BM_SwapSweepIncremental(benchmark::State& state) {
  SwapSweepRounds(state, /*incremental=*/true);
}
BENCHMARK(BM_SwapSweepIncremental)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Dynamic churn: one single-point edit (alternating insert / delete)
// followed by a SwapCostMatrix round, the access pattern of local
// search over a mutating instance. `incremental` routes the edit
// through ApplyDatasetEdit so the cached swap tables roll over
// (EditSwapBase sparse rewrites, kernel work only for the inserted
// locations); off, the edit silently invalidates the fingerprint and
// every round pays the full table rebuild.
void ChurnTrajectory(benchmark::State& state, bool incremental) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto dataset = MakeDataset(n);
  metric::EuclideanSpace* space = dataset.euclidean();
  UKC_CHECK(space != nullptr);
  const size_t dim = space->dim();
  const auto sites = dataset.LocationSites();
  auto seed = solver::Gonzalez(dataset.space(), sites, 8);
  std::vector<metric::SiteId> pool;
  for (size_t i = 0; i < 16; ++i) pool.push_back(sites[(i * 977) % sites.size()]);
  cost::ParallelCandidateEvaluator::Options options;
  options.threads = 1;
  options.incremental_rollover = true;
  options.kd_prune = true;
  cost::ParallelCandidateEvaluator evaluator(options);
  {
    auto warm = evaluator.SwapCostMatrix(dataset, seed->centers, pool);
    UKC_CHECK(warm.ok()) << warm.status();
  }
  Rng rng(0xC0DE);
  std::vector<double> coords(dim);
  bool insert_next = true;
  for (auto _ : state) {
    cost::DatasetEdit edit;
    if (insert_next) {
      std::vector<uncertain::Location> locations;
      for (size_t l = 0; l < 4; ++l) {
        for (double& c : coords) c = rng.UniformDouble(-10.0, 10.0);
        locations.push_back(
            uncertain::Location{space->AddCoords(coords.data()), 0.25});
      }
      auto point = uncertain::UncertainPoint::Build(std::move(locations));
      UKC_CHECK(point.ok());
      edit.is_insert = true;
      edit.point = static_cast<uint32_t>(dataset.n());
      edit.location_begin = dataset.total_locations();
      edit.location_end = edit.location_begin + 4;
      UKC_CHECK(dataset.AppendPoint(*point).ok());
    } else {
      const size_t victim = rng.Next() % dataset.n();
      edit.is_insert = false;
      edit.point = static_cast<uint32_t>(victim);
      edit.location_begin = dataset.offsets()[victim];
      edit.location_end = dataset.offsets()[victim + 1];
      UKC_CHECK(dataset.RemovePoint(victim).ok());
    }
    insert_next = !insert_next;
    if (incremental) {
      UKC_CHECK(evaluator.ApplyDatasetEdit(dataset, edit).ok());
    }
    auto values = evaluator.SwapCostMatrix(dataset, seed->centers, pool);
    UKC_CHECK(values.ok()) << values.status();
    benchmark::DoNotOptimize(values);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ChurnTrajectory(benchmark::State& state) {
  ChurnTrajectory(state, /*incremental=*/true);
}
BENCHMARK(BM_ChurnTrajectory)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_ChurnTrajectoryRebuild(benchmark::State& state) {
  ChurnTrajectory(state, /*incremental=*/false);
}
BENCHMARK(BM_ChurnTrajectoryRebuild)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);

// Sliding-window ingest: sustained Add + per-point ExpireBefore at a
// fixed window width — the serving write path of a windowed tenant.
// Arg is the window in points; the expiry cost is dominated by bucket
// retirement at the watermark boundary (churn_bucket = window / 16).
void BM_SlidingWindow(benchmark::State& state) {
  const uint64_t window = static_cast<uint64_t>(state.range(0));
  stream::CoresetOptions options;
  options.max_cells = 1024;
  options.base_cell_width = 1e-3;
  options.churn_bucket = std::max<uint64_t>(1, window / 16);
  stream::StreamingCoreset coreset(2, metric::Norm::kL2, options);
  Rng rng(0xF10A7);
  double coords[2];
  uint64_t index = 0;
  for (auto _ : state) {
    coords[0] = rng.UniformDouble(-10.0, 10.0);
    coords[1] = rng.UniformDouble(-10.0, 10.0);
    UKC_CHECK(coreset.Add(index, coords, 0.0).ok());
    ++index;
    if (index > window) {
      auto retired = coreset.ExpireBefore(index - window);
      UKC_CHECK(retired.ok()) << retired.status();
    }
  }
  state.counters["cells"] = static_cast<double>(coreset.ExtractCells().size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlidingWindow)->Arg(1024)->Arg(16384);

// Exhaustive subset optimization with worker-sharded enumeration
// (ranked unranking; C(16, 4) = 1820 exact sweeps per iteration).
void BM_TinyEnumerate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto dataset = MakeDataset(n);
  const auto sites = dataset.LocationSites();
  std::vector<metric::SiteId> candidates;
  for (size_t i = 0; i < 16; ++i) {
    candidates.push_back(sites[(i * 977) % sites.size()]);
  }
  for (auto _ : state) {
    auto solution =
        core::ExactUnassignedTiny(dataset, 4, candidates, 2'000'000, 1);
    UKC_CHECK(solution.ok()) << solution.status();
    benchmark::DoNotOptimize(solution);
  }
  state.SetItemsProcessed(state.iterations() * 1820);
}
BENCHMARK(BM_TinyEnumerate)->Arg(200)->Unit(benchmark::kMillisecond);

// The compacted snapshot ladder on a local-search trajectory at
// n = 10^5, k = 8: wall time plus the resident ladder bytes (snapshot
// CDFs — the storage the compaction shrinks 7n -> 2n doubles per
// table), total swap-base bytes, and the escalation / replayed-event
// counters that price the rare intermediate-rung re-derivations.
void SwapLadderRounds(benchmark::State& state, bool compact) {
  const size_t n = static_cast<size_t>(state.range(0));
  constexpr size_t kRounds = 2;
  auto dataset = MakeDataset(n);
  const auto sites = dataset.LocationSites();
  auto seed = solver::Gonzalez(dataset.space(), sites, 8);
  std::vector<metric::SiteId> pool;
  for (size_t i = 0; i < 16; ++i) pool.push_back(sites[(i * 977) % sites.size()]);
  cost::ParallelCandidateEvaluator::Options options;
  options.threads = 1;
  options.evaluator.compact_swap_ladder = compact;
  cost::ParallelCandidateEvaluator parallel(options);
  for (auto _ : state) {
    auto centers = seed->centers;
    for (size_t round = 0; round < kRounds; ++round) {
      auto values = parallel.SwapCostMatrix(dataset, centers, pool);
      UKC_CHECK(values.ok()) << values.status();
      double best = std::numeric_limits<double>::infinity();
      size_t best_position = 0;
      metric::SiteId best_candidate = centers[0];
      for (size_t p = 0; p < centers.size(); ++p) {
        for (size_t c = 0; c < pool.size(); ++c) {
          if (pool[c] == centers[p]) continue;
          const double value = (*values)[p * pool.size() + c];
          if (value < best) {
            best = value;
            best_position = p;
            best_candidate = pool[c];
          }
        }
      }
      centers[best_position] = best_candidate;
    }
    benchmark::DoNotOptimize(centers);
  }
  state.counters["ladder_bytes"] =
      static_cast<double>(parallel.SwapLadderBytes());
  state.counters["swap_base_bytes"] =
      static_cast<double>(parallel.SwapBaseMemoryBytes());
  state.counters["escalations"] =
      static_cast<double>(parallel.LadderEscalations()) /
      static_cast<double>(state.iterations());
  state.counters["replayed_events"] =
      static_cast<double>(parallel.LadderReplayedEvents()) /
      static_cast<double>(state.iterations());
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kRounds * 8 * pool.size()));
}

void BM_SwapLadderCompact(benchmark::State& state) {
  SwapLadderRounds(state, /*compact=*/true);
}
BENCHMARK(BM_SwapLadderCompact)->Arg(100000)->Unit(benchmark::kMillisecond);

void BM_SwapLadderFull(benchmark::State& state) {
  SwapLadderRounds(state, /*compact=*/false);
}
BENCHMARK(BM_SwapLadderFull)->Arg(100000)->Unit(benchmark::kMillisecond);

// A deterministic synthetic uncertain-point stream (8 planted cluster
// homes, z = 4 locations per point, each point a pure function of its
// index) that is generated on the fly: nothing of size n is ever
// resident, so the stream benches exercise the true out-of-core path
// at n = 10^6 without an O(n) setup allocation.
stream::BatchSourceFactory SyntheticStreamFactory(size_t n, size_t chunk_size,
                                                  uint64_t seed = 977) {
  return [n, chunk_size, seed]() -> Result<stream::BatchSource> {
    auto index = std::make_shared<size_t>(0);
    return stream::MakeProducerBatchSource(
        2,
        [n, seed, index](std::vector<double>* coords,
                         std::vector<double>* probabilities) {
          if (*index >= n) return false;
          Rng point_rng = Rng(seed).Fork(*index);
          const size_t cluster = *index % 8;
          const double cx = 10.0 * static_cast<double>(cluster % 4);
          const double cy = 10.0 * static_cast<double>(cluster / 4);
          const double hx = cx + point_rng.Gaussian(0.0, 1.0);
          const double hy = cy + point_rng.Gaussian(0.0, 1.0);
          for (int l = 0; l < 4; ++l) {
            coords->push_back(hx + point_rng.Gaussian(0.0, 0.4));
            coords->push_back(hy + point_rng.Gaussian(0.0, 0.4));
            probabilities->push_back(0.25);
          }
          ++*index;
          return true;
        },
        chunk_size);
  };
}

// Pass 1 of the streaming pipeline alone: chunked ingestion into the
// sharded coreset. The coreset_bytes counter demonstrates the
// memory-independence claim — it stays flat as n grows 10x.
void BM_StreamIngest(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto factory = SyntheticStreamFactory(n, 8192);
  ThreadPool pool(1);
  stream::IngestOptions options;
  options.chunk_size = 8192;
  options.coreset.max_cells = 4096;
  size_t coreset_bytes = 0;
  for (auto _ : state) {
    auto source = factory();
    UKC_CHECK(source.ok()) << source.status();
    auto coreset = stream::BuildCoresetFromSource(2, *source, options, &pool);
    UKC_CHECK(coreset.ok()) << coreset.status();
    coreset_bytes = coreset->ApproxMemoryBytes();
    benchmark::DoNotOptimize(coreset);
  }
  state.counters["coreset_bytes"] = static_cast<double>(coreset_bytes);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_StreamIngest)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// Reducing two shard coresets (the merge-tree edge): built once from
// disjoint halves of a 10^5-point stream, merged per iteration.
void BM_CoresetMerge(benchmark::State& state) {
  const size_t max_cells = static_cast<size_t>(state.range(0));
  const size_t n = 100000;
  ThreadPool pool(1);
  stream::IngestOptions options;
  options.chunk_size = 8192;
  options.coreset.max_cells = max_cells;
  // Each side is a full stream under a different seed, so the merge
  // sees two genuinely distinct cell tables.
  auto build_side = [&](uint64_t seed) {
    auto factory = SyntheticStreamFactory(n, 8192, seed);
    auto source = factory();
    UKC_CHECK(source.ok()) << source.status();
    auto coreset = stream::BuildCoresetFromSource(2, *source, options, &pool);
    UKC_CHECK(coreset.ok()) << coreset.status();
    return std::move(*coreset);
  };
  const stream::StreamingCoreset left = build_side(977);
  const stream::StreamingCoreset right = build_side(1977);
  for (auto _ : state) {
    stream::StreamingCoreset merged = left;
    auto status = merged.MergeFrom(right);
    benchmark::DoNotOptimize(status);
    benchmark::DoNotOptimize(merged);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(left.num_cells()));
}
BENCHMARK(BM_CoresetMerge)->Arg(1024)->Arg(4096);

// The full out-of-core pipeline (ingest + solve on coreset + verified
// full-data pass) at the n = 10^6 scaling point.
void BM_StreamingPipeline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  stream::StreamingOptions options;
  options.k = 8;
  options.threads = 1;
  options.ingest.chunk_size = 8192;
  options.ingest.coreset.max_cells = 4096;
  stream::StreamingUncertainKCenter solver(options);
  double upper = 0.0;
  size_t coreset_bytes = 0;
  for (auto _ : state) {
    auto solution = solver.SolveSource(2, SyntheticStreamFactory(n, 8192));
    UKC_CHECK(solution.ok()) << solution.status();
    upper = solution->verified_upper;
    coreset_bytes = solution->coreset_memory_bytes;
    benchmark::DoNotOptimize(solution);
  }
  state.counters["verified_upper"] = upper;
  state.counters["coreset_bytes"] = static_cast<double>(coreset_bytes);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_StreamingPipeline)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);

// Builds the checkpoint image an n-point ingestion would save: the
// merged coreset of the synthetic stream (cell count capped at
// max_cells, so the sidecar stays ~flat as n grows 10x).
stream::IngestCheckpoint CheckpointOf(size_t n) {
  ThreadPool pool(1);
  stream::IngestOptions options;
  options.chunk_size = 8192;
  options.coreset.max_cells = 4096;
  auto source = SyntheticStreamFactory(n, 8192)();
  UKC_CHECK(source.ok()) << source.status();
  auto coreset = stream::BuildCoresetFromSource(2, *source, options, &pool);
  UKC_CHECK(coreset.ok()) << coreset.status();
  stream::IngestCheckpoint checkpoint;
  checkpoint.config_fingerprint = 0x1234;
  checkpoint.content_fingerprint = 0x5678;
  checkpoint.batches = n / 8192;
  checkpoint.points = n;
  checkpoint.locations = 4 * n;
  coreset->SerializeTo(&checkpoint.coreset_image);
  return checkpoint;
}

// One checkpoint save: serialize + checksum + write + atomic rename.
// sync=false keeps the number a property of the code, not of the
// filesystem's fsync latency; the checkpoint_bytes counter tracks the
// sidecar size (bounded by max_cells, independent of n).
void BM_CheckpointSave(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const stream::IngestCheckpoint checkpoint = CheckpointOf(n);
  const std::string path = "bench_checkpoint_save.ckpt";
  size_t bytes = 0;
  for (auto _ : state) {
    auto status = stream::SaveCheckpoint(path, checkpoint, /*sync=*/false);
    UKC_CHECK(status.ok()) << status;
    benchmark::DoNotOptimize(status);
  }
  bytes = checkpoint.coreset_image.size();
  std::remove(path.c_str());
  state.counters["checkpoint_bytes"] = static_cast<double>(bytes);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckpointSave)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

// One checkpoint restore: read + checksum verify + header validation +
// coreset image deserialization — the fixed cost a resumed run pays
// instead of re-ingesting the prefix.
void BM_CheckpointRestore(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const stream::IngestCheckpoint checkpoint = CheckpointOf(n);
  const std::string path = "bench_checkpoint_restore.ckpt";
  auto status = stream::SaveCheckpoint(path, checkpoint, /*sync=*/false);
  UKC_CHECK(status.ok()) << status;
  for (auto _ : state) {
    auto loaded = stream::LoadCheckpoint(path);
    UKC_CHECK(loaded.ok()) << loaded.status();
    auto coreset = stream::StreamingCoreset::Deserialize(loaded->coreset_image);
    UKC_CHECK(coreset.ok()) << coreset.status();
    benchmark::DoNotOptimize(coreset);
  }
  std::remove(path.c_str());
  state.counters["checkpoint_bytes"] =
      static_cast<double>(checkpoint.coreset_image.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CheckpointRestore)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

#if UKC_FAULT_INJECTION
// Ingestion under a flaky source: ~5% of batch pulls fail transiently
// and are retried (zero-backoff sleeper, so the number measures the
// retry machinery, not sleeping). Compare against BM_StreamIngest for
// the overhead of a fault-heavy run; the read_retries counter reports
// how many pulls were actually retried per iteration.
void BM_IngestWithFaultRetry(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const auto factory =
      stream::AdaptBatchFactory(SyntheticStreamFactory(n, 8192));
  ThreadPool pool(1);
  stream::IngestOptions options;
  options.chunk_size = 8192;
  options.coreset.max_cells = 4096;
  options.retry.sleeper = [](std::chrono::nanoseconds) {};
  FaultPlan plan;
  plan.seed = 31;
  plan.rules.push_back(
      FaultRule{"ingest.read", {}, 0.05, StatusCode::kUnavailable, 0});
  uint64_t retries = 0;
  for (auto _ : state) {
    ScopedFaultInjection scope(plan);
    stream::IngestStats stats;
    auto coreset = stream::IngestCoreset(2, factory, options, &pool, &stats);
    UKC_CHECK(coreset.ok()) << coreset.status();
    retries = stats.read_retries;
    benchmark::DoNotOptimize(coreset);
  }
  state.counters["read_retries"] = static_cast<double>(retries);
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_IngestWithFaultRetry)->Arg(100000)->Arg(1000000)
    ->Unit(benchmark::kMillisecond);
#endif  // UKC_FAULT_INJECTION

void BM_MonteCarloCost1k(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto dataset = MakeDataset(n);
  const auto sites = dataset.LocationSites();
  auto centers = solver::Gonzalez(dataset.space(), sites, 8);
  auto assignment = cost::AssignExpectedDistance(dataset, centers->centers);
  Rng rng(1);
  for (auto _ : state) {
    auto value = cost::MonteCarloAssignedCost(dataset, *assignment, 1000, rng);
    benchmark::DoNotOptimize(value);
  }
}
BENCHMARK(BM_MonteCarloCost1k)->Arg(1000);

void BM_RealizationSampling(benchmark::State& state) {
  auto dataset = MakeDataset(static_cast<size_t>(state.range(0)));
  uncertain::RealizationSampler sampler(dataset);
  Rng rng(2);
  uncertain::Realization realization;
  for (auto _ : state) {
    sampler.SampleInto(rng, &realization);
    benchmark::DoNotOptimize(realization);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RealizationSampling)->Arg(1000)->Arg(16000);

void BM_WelzlMinBall(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t dim = static_cast<size_t>(state.range(1));
  Rng rng(3);
  std::vector<geometry::Point> points;
  for (size_t i = 0; i < n; ++i) {
    geometry::Point p(dim);
    for (size_t a = 0; a < dim; ++a) p[a] = rng.Gaussian();
    points.push_back(std::move(p));
  }
  for (auto _ : state) {
    Rng welzl_rng(4);
    auto ball = solver::WelzlMinBall(points, welzl_rng);
    benchmark::DoNotOptimize(ball);
  }
}
BENCHMARK(BM_WelzlMinBall)->Args({1000, 2})->Args({1000, 3})->Args({10000, 2});

void BM_BadoiuClarkson(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<geometry::Point> points;
  for (size_t i = 0; i < n; ++i) {
    geometry::Point p(16);
    for (size_t a = 0; a < 16; ++a) p[a] = rng.Gaussian();
    points.push_back(std::move(p));
  }
  for (auto _ : state) {
    auto ball = solver::BadoiuClarkson(points, 0.1);
    benchmark::DoNotOptimize(ball);
  }
}
BENCHMARK(BM_BadoiuClarkson)->Arg(1000)->Arg(10000);

void BM_WeightedGeometricMedian(benchmark::State& state) {
  const size_t z = static_cast<size_t>(state.range(0));
  Rng rng(6);
  std::vector<geometry::Point> points;
  std::vector<double> weights;
  for (size_t i = 0; i < z; ++i) {
    points.push_back(geometry::Point{rng.Gaussian(), rng.Gaussian()});
    weights.push_back(rng.UniformDouble(0.1, 1.0));
  }
  for (auto _ : state) {
    auto median = solver::WeightedGeometricMedian(points, weights);
    benchmark::DoNotOptimize(median);
  }
}
BENCHMARK(BM_WeightedGeometricMedian)->Arg(4)->Arg(16)->Arg(64);

// --- Serving core (serve/) --------------------------------------------------

// A registry with `tenants` resident streams, each warmed with
// `appends` acked batches of 4 points.
serve::TenantRegistry* MakeWarmRegistry(size_t tenants, size_t appends,
                                        const std::string& snapshot_dir = "") {
  serve::RegistryOptions options;
  options.queue_capacity = 256;
  auto* registry = new serve::TenantRegistry(options);
  Rng rng(0xbe7c);
  for (size_t t = 0; t < tenants; ++t) {
    serve::TenantConfig config;
    config.dim = 2;
    config.k = 8;
    config.coreset.max_cells = 1024;
    config.coreset.base_cell_width = 1e-3;
    const std::string id = "tenant-" + std::to_string(t);
    if (!snapshot_dir.empty()) {
      config.snapshot_path = snapshot_dir + "_" + id + ".ckpt";
      config.snapshot_every_appends = 64;
    }
    UKC_CHECK(registry->CreateTenant(id, config).ok());
    for (size_t a = 0; a < appends; ++a) {
      uncertain::UncertainPointBatch batch;
      batch.dim = 2;
      batch.offsets.push_back(0);
      for (size_t i = 0; i < 4; ++i) {
        const size_t locations = 1 + rng.Next() % 3;
        for (size_t l = 0; l < locations; ++l) {
          batch.coords.push_back(rng.UniformDouble(-10.0, 10.0));
          batch.coords.push_back(rng.UniformDouble(-10.0, 10.0));
          batch.probabilities.push_back(1.0 / locations);
        }
        batch.offsets.push_back(batch.offsets.back() + locations);
      }
      UKC_CHECK(registry->SubmitAppend(id, batch).ok());
      if (a % 64 == 63) registry->Drain();
    }
    registry->Drain();
  }
  return registry;
}

// Append-to-ack throughput through the admission queue + Drain, the
// serving core's write path (includes the cadence snapshots).
void BM_ServeAppendDrain(benchmark::State& state) {
  const size_t tenants = static_cast<size_t>(state.range(0));
  std::unique_ptr<serve::TenantRegistry> registry(
      MakeWarmRegistry(tenants, 16));
  Rng rng(0xabba);
  uncertain::UncertainPointBatch batch;
  batch.dim = 2;
  batch.offsets = {0, 1, 2, 3, 4};
  for (size_t l = 0; l < 4; ++l) {
    batch.coords.push_back(rng.UniformDouble(-10.0, 10.0));
    batch.coords.push_back(rng.UniformDouble(-10.0, 10.0));
    batch.probabilities.push_back(1.0);
  }
  size_t t = 0;
  for (auto _ : state) {
    const std::string id = "tenant-" + std::to_string(t++ % tenants);
    UKC_CHECK(registry->SubmitAppend(id, batch).ok());
    registry->Drain();
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_ServeAppendDrain)->Arg(1)->Arg(8);

// The cheap query shape: exact max-over-cells cost of one candidate
// set against a warmed tenant (1024-cell ceiling).
void BM_ServeCandidateCostQuery(benchmark::State& state) {
  std::unique_ptr<serve::TenantRegistry> registry(MakeWarmRegistry(1, 256));
  const std::vector<double> candidates = {0.0, 0.0, 5.0, 5.0, -5.0, 5.0};
  for (auto _ : state) {
    auto answer =
        registry->QueryCandidateCost("tenant-0", candidates, 3, Deadline());
    UKC_CHECK(answer.ok()) << answer.status();
    benchmark::DoNotOptimize(answer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeCandidateCostQuery);

// The expensive query shape: full k-center solve on the tenant's
// cells. Arg is the warm-up append count (more cells = bigger solve);
// a one-point append per iteration moves the epoch so the answer
// cache never hits and every query pays the cold solve.
void BM_ServeCentersQueryCold(benchmark::State& state) {
  const size_t appends = static_cast<size_t>(state.range(0));
  std::unique_ptr<serve::TenantRegistry> registry(
      MakeWarmRegistry(1, appends));
  serve::Tenant* tenant = registry->FindTenant("tenant-0");
  for (auto _ : state) {
    // One fresh point per iteration moves the epoch, so every query
    // pays the full solve (the cache never hits).
    uncertain::UncertainPointBatch batch;
    batch.dim = 2;
    batch.offsets = {0, 1};
    batch.coords = {1.0, 1.0};
    batch.probabilities = {1.0};
    UKC_CHECK(tenant->Append(batch).ok());
    auto answer = registry->QueryCenters("tenant-0", Deadline());
    UKC_CHECK(answer.ok()) << answer.status();
    benchmark::DoNotOptimize(answer);
  }
  state.counters["cells"] = static_cast<double>(tenant->num_cells());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeCentersQueryCold)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// The cached path the serving loop actually rides between appends.
void BM_ServeCentersQueryCached(benchmark::State& state) {
  std::unique_ptr<serve::TenantRegistry> registry(MakeWarmRegistry(1, 256));
  for (auto _ : state) {
    auto answer = registry->QueryCenters("tenant-0", Deadline());
    UKC_CHECK(answer.ok()) << answer.status();
    benchmark::DoNotOptimize(answer);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeCentersQueryCached);

// Failover: one kill-and-restore of a warmed tenant from its sidecar
// (load + checksum + deserialize + state reset) — the recovery-time
// number the ops runbook quotes.
void BM_ServeFailoverRestore(benchmark::State& state) {
  std::unique_ptr<serve::TenantRegistry> registry(
      MakeWarmRegistry(1, 256, "bench_serve_failover"));
  for (auto _ : state) {
    uint64_t restored_epoch = 0;
    auto status = registry->RestoreTenant("tenant-0", &restored_epoch);
    UKC_CHECK(status.ok()) << status;
    benchmark::DoNotOptimize(restored_epoch);
  }
  std::remove("bench_serve_failover_tenant-0.ckpt");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeFailoverRestore)->Unit(benchmark::kMicrosecond);

// Overload: submissions against a full queue. Measures the shed path
// (reject-newest + marked status), which must stay O(1) — shedding is
// the mechanism that keeps an overloaded core responsive.
void BM_ServeOverloadShed(benchmark::State& state) {
  serve::RegistryOptions options;
  options.queue_capacity = 4;
  serve::TenantRegistry registry(options);
  serve::TenantConfig config;
  config.dim = 2;
  config.coreset.base_cell_width = 1e-3;
  UKC_CHECK(registry.CreateTenant("tenant-0", config).ok());
  uncertain::UncertainPointBatch batch;
  batch.dim = 2;
  batch.offsets = {0, 1};
  batch.coords = {1.0, 1.0};
  batch.probabilities = {1.0};
  for (size_t i = 0; i < 4; ++i) {
    UKC_CHECK(registry.SubmitAppend("tenant-0", batch).ok());
  }
  uint64_t sheds = 0;
  for (auto _ : state) {
    const Status status = registry.SubmitAppend("tenant-0", batch);
    UKC_CHECK(serve::IsShed(status)) << status;
    ++sheds;
    benchmark::DoNotOptimize(status);
  }
  state.counters["sheds"] = static_cast<double>(sheds);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServeOverloadShed);

// --- Observability (obs/) ---------------------------------------------------

// The hot-path overhead budget: one metered event is one relaxed
// atomic add on a per-thread shard (plus bucket search + fixed-point
// sum for histograms). These two numbers price every UKC_OBS metering
// site in serve/stream/cost; BM_Serve* and BM_StreamIngest above must
// stay within noise of their pre-observability values.
void BM_MetricsCounter(benchmark::State& state) {
  obs::Counter* counter =
      obs::MetricsRegistry::Default().GetCounter("ukc_bench_counter_total");
  for (auto _ : state) {
    counter->Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounter)->ThreadRange(1, 8);

void BM_MetricsHistogram(benchmark::State& state) {
  obs::Histogram* histogram =
      obs::MetricsRegistry::Default().GetHistogram("ukc_bench_seconds");
  double value = 1e-6;
  for (auto _ : state) {
    histogram->Observe(value);
    // Walk the latency range so the bucket search sees varied depths.
    value = value < 1.0 ? value * 1.5 : 1e-6;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsHistogram)->ThreadRange(1, 8);

}  // namespace
}  // namespace ukc

int main(int argc, char** argv) {
  // Provenance context for BENCH_micro.json (see file comment).
  const char* git_sha = std::getenv("UKC_GIT_SHA");
  benchmark::AddCustomContext("git_sha", git_sha != nullptr ? git_sha : "unknown");
  benchmark::AddCustomContext(
      "hardware_threads", std::to_string(std::thread::hardware_concurrency()));
  benchmark::AddCustomContext("dataset_sizes",
                              "1000,4000,10000,16000,100000,1000000");
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
