// Table 1, rows 2-3: restricted assigned k-center in Euclidean space
// under the expected-distance (ED) assignment.
//
//   row 2: Gonzalez-plugged pipeline (f = 2), O(nz + n log k), factor 6
//   row 3: (1+eps)-plugged pipeline (here: exact partition solver,
//          eps = 0), factor 5 + eps
//
// Part A measures empirical ratios against the exact restricted-ED
// optimum on tiny instances. Part B confirms the O(nz + nk) running-time
// scaling of the Gonzalez pipeline on large instances.

#include <iostream>

#include "bench/bench_common.h"

namespace ukc {
namespace {

int Run() {
  bench::PrintBanner(
      "Table 1, rows 2-3 — restricted assigned k-center, Euclidean, ED rule",
      "factor 6 with Gonzalez (f=2); factor 5+eps with a (1+eps) solver "
      "(Theorem 2.2, ED)");

  // Part A: approximation ratios on tiny instances vs the exact
  // restricted-ED optimum (dense candidate set).
  TablePrinter table({"certain solver", "claimed", "family", "ratio mean",
                      "ratio max", "ok", "ms/instance"});
  bool all_ok = true;
  struct Config {
    solver::CertainSolverKind kind;
    double claimed;
    const char* label;
  };
  for (const Config& config :
       {Config{solver::CertainSolverKind::kGonzalez, 6.0, "gonzalez (f=2)"},
        Config{solver::CertainSolverKind::kExact, 5.0, "exact (f=1, eps=0)"},
        Config{solver::CertainSolverKind::kGridEpsilon, 5.25,
               "grid-eps (f=1.25)"}}) {
    for (auto family : {exper::Family::kUniform, exper::Family::kClustered,
                        exper::Family::kOutlier}) {
      RunningStats ratios;
      RunningStats times;
      for (uint64_t seed = 1; seed <= 8; ++seed) {
        exper::InstanceSpec spec;
        spec.family = family;
        spec.n = 5;
        spec.z = 3;
        spec.dim = 2;
        spec.k = 2;
        spec.spread = 0.8;
        spec.seed = seed;
        core::UncertainKCenterOptions options;
        options.k = spec.k;
        options.rule = cost::AssignmentRule::kExpectedDistance;
        options.certain.kind = config.kind;
        auto sample = bench::MeasureAgainstTinyRestricted(spec, options);
        UKC_CHECK(sample.ok()) << sample.status();
        ratios.Add(sample->ratio);
        times.Add(sample->seconds * 1e3);
      }
      const bool ok = ratios.Max() <= config.claimed + 1e-9;
      all_ok = all_ok && ok;
      table.AddRowValues(config.label, config.claimed,
                         exper::FamilyToString(family), ratios.Mean(),
                         ratios.Max(), ok ? "yes" : "NO", times.Mean());
    }
  }
  table.Print(std::cout);

  // Part B: running-time scaling of the Gonzalez pipeline (row 2 claims
  // O(nz + n log k); our Gonzalez is O(nz + nk)).
  std::cout << "\nRunning time of the Gonzalez ED pipeline (excludes the "
               "exact cost evaluation; the paper's algorithm returns centers "
               "only):\n";
  TablePrinter scaling({"n", "z", "k", "surrogate ms", "cluster ms",
                        "assign ms", "total ms"});
  for (size_t n : {1000u, 2000u, 4000u, 8000u}) {
    exper::InstanceSpec spec;
    spec.family = exper::Family::kClustered;
    spec.n = n;
    spec.z = 5;
    spec.k = 8;
    spec.seed = 3;
    auto dataset = exper::MakeInstance(spec);
    UKC_CHECK(dataset.ok()) << dataset.status();
    core::UncertainKCenterOptions options;
    options.k = spec.k;
    options.rule = cost::AssignmentRule::kExpectedDistance;
    auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
    UKC_CHECK(solution.ok()) << solution.status();
    const auto& t = solution->timings;
    scaling.AddRowValues(
        static_cast<int>(n), 5, 8, t.surrogate_seconds * 1e3,
        t.clustering_seconds * 1e3, t.assignment_seconds * 1e3,
        (t.surrogate_seconds + t.clustering_seconds + t.assignment_seconds) *
            1e3);
  }
  scaling.Print(std::cout);
  std::cout << (all_ok ? "\nAll measured ratios within the claimed factors.\n"
                       : "\nBOUND VIOLATION DETECTED\n");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
