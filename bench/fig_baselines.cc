// Figure C (supplementary): the paper's pipeline against the baselines
// a practitioner would try first, including the Guha–Munagala-style
// truncated-median comparator (the prior state of the art the paper
// improves from 15(1+2eps) to 5+eps). Shape claim: the pipeline is
// competitive on random families (where even unguaranteed baselines do
// fine, because E[max] saturates) and is the only method that does not
// collapse on adversarial distributions — demonstrated by the
// modal-collapse construction in the last table.

#include <iostream>

#include <memory>

#include "baselines/baselines.h"
#include "bench/bench_common.h"

namespace ukc {
namespace {

int Run() {
  bench::PrintBanner(
      "Figure C — expected cost: paper pipeline vs baselines",
      "the pipeline is competitive everywhere and is the only method "
      "with a worst-case guarantee; baselines collapse on adversarial "
      "distributions (last table) while the pipeline does not");

  TablePrinter table({"family", "paper ED", "paper EP", "pooled", "modal",
                      "random", "truncated-median"});
  for (auto family : {exper::Family::kUniform, exper::Family::kClustered,
                      exper::Family::kOutlier, exper::Family::kGridGraph}) {
    exper::InstanceSpec spec;
    spec.family = family;
    spec.n = 60;
    spec.z = 4;
    spec.k = 4;
    spec.spread = 1.0;
    spec.seed = 23;

    auto run_pipeline = [&](cost::AssignmentRule rule) {
      auto dataset = exper::MakeInstance(spec);
      UKC_CHECK(dataset.ok());
      core::UncertainKCenterOptions options;
      options.k = spec.k;
      options.rule = rule;
      auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
      UKC_CHECK(solution.ok()) << solution.status();
      return solution->expected_cost;
    };
    auto run_baseline = [&](baselines::BaselineKind kind) {
      auto dataset = exper::MakeInstance(spec);
      UKC_CHECK(dataset.ok());
      baselines::BaselineOptions options;
      options.k = spec.k;
      auto result = baselines::RunBaseline(&dataset.value(), kind, options);
      UKC_CHECK(result.ok()) << result.status();
      return result->expected_cost;
    };

    const bool euclidean = family != exper::Family::kGridGraph;
    const double paper_ed =
        run_pipeline(cost::AssignmentRule::kExpectedDistance);
    const double paper_ep =
        euclidean ? run_pipeline(cost::AssignmentRule::kExpectedPoint) : 0.0;
    table.AddRow({exper::FamilyToString(family),
                  TablePrinter::FormatCell(paper_ed),
                  euclidean ? TablePrinter::FormatCell(paper_ep)
                            : std::string("n/a"),
                  TablePrinter::FormatCell(run_baseline(
                      baselines::BaselineKind::kPooledLocations)),
                  TablePrinter::FormatCell(
                      run_baseline(baselines::BaselineKind::kModalLocation)),
                  TablePrinter::FormatCell(
                      run_baseline(baselines::BaselineKind::kRandomCenters)),
                  TablePrinter::FormatCell(run_baseline(
                      baselines::BaselineKind::kTruncatedMedian))});
  }
  table.Print(std::cout);

  std::cout << "\nAveraged over 8 seeds on the outlier family (where "
               "expectation-awareness matters most):\n";
  TablePrinter averaged({"algorithm", "mean expected cost"});
  RunningStats paper;
  RunningStats modal;
  RunningStats truncated;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    exper::InstanceSpec spec;
    spec.family = exper::Family::kOutlier;
    spec.n = 50;
    spec.z = 4;
    spec.k = 4;
    spec.seed = seed;
    {
      auto dataset = exper::MakeInstance(spec);
      UKC_CHECK(dataset.ok());
      core::UncertainKCenterOptions options;
      options.k = spec.k;
      auto solution = core::SolveUncertainKCenter(&dataset.value(), options);
      UKC_CHECK(solution.ok());
      paper.Add(solution->expected_cost);
    }
    for (auto [kind, stats] :
         {std::pair{baselines::BaselineKind::kModalLocation, &modal},
          std::pair{baselines::BaselineKind::kTruncatedMedian, &truncated}}) {
      auto dataset = exper::MakeInstance(spec);
      UKC_CHECK(dataset.ok());
      baselines::BaselineOptions options;
      options.k = spec.k;
      auto result = baselines::RunBaseline(&dataset.value(), kind, options);
      UKC_CHECK(result.ok());
      stats->Add(result->expected_cost);
    }
  }
  averaged.AddRowValues("paper pipeline (ED)", paper.Mean());
  averaged.AddRowValues("modal baseline", modal.Mean());
  averaged.AddRowValues("truncated-median baseline", truncated.Mean());
  averaged.Print(std::cout);
  std::cout << "\nNote: on random families the unguaranteed baselines are "
               "often competitive — E[max] saturates once any point's far "
               "tail realizes, leaving little for center placement to do. "
               "The guarantee gap shows on adversarial inputs:\n\n";

  // Adversarial construction: every point's modal location is the
  // origin, but tails split east/west. Modal surrogates all collapse to
  // one site, so the modal baseline cannot separate the clusters; the
  // expected-point surrogates split them.
  std::cout << "Modal-collapse construction (k=2, tails at +/-100):\n";
  TablePrinter adversarial({"n", "paper ED", "modal", "modal/paper"});
  for (int pairs : {3, 6, 12}) {
    auto space = std::make_shared<metric::EuclideanSpace>(2);
    const metric::SiteId origin = space->AddPoint(geometry::Point{0.0, 0.0});
    const metric::SiteId east = space->AddPoint(geometry::Point{100.0, 0.0});
    const metric::SiteId west = space->AddPoint(geometry::Point{-100.0, 0.0});
    std::vector<uncertain::UncertainPoint> points;
    for (int copy = 0; copy < pairs; ++copy) {
      points.push_back(*uncertain::UncertainPoint::Build(
          {{origin, 0.6}, {east, 0.4}}));
      points.push_back(*uncertain::UncertainPoint::Build(
          {{origin, 0.6}, {west, 0.4}}));
    }
    auto dataset =
        uncertain::UncertainDataset::Build(space, std::move(points));
    UKC_CHECK(dataset.ok());
    core::UncertainKCenterOptions options;
    options.k = 2;
    auto pipeline = core::SolveUncertainKCenter(&dataset.value(), options);
    UKC_CHECK(pipeline.ok());
    baselines::BaselineOptions baseline_options;
    baseline_options.k = 2;
    auto modal_result = baselines::RunBaseline(
        &dataset.value(), baselines::BaselineKind::kModalLocation,
        baseline_options);
    UKC_CHECK(modal_result.ok());
    adversarial.AddRowValues(
        2 * pairs, pipeline->expected_cost, modal_result->expected_cost,
        modal_result->expected_cost / pipeline->expected_cost);
  }
  adversarial.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
