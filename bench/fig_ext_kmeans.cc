// Figure F (extension): uncertain k-means via the lossless
// expected-point reduction. Demonstrates the bias–variance identity
// numerically (cost = surrogate objective + variance floor, to machine
// precision) and shows how the variance floor — the irreducible part
// of the cost no center placement can remove — grows with the
// uncertainty spread.

#include <iostream>

#include "bench/bench_common.h"
#include "core/kmeans.h"

namespace ukc {
namespace {

int Run() {
  bench::PrintBanner(
      "Figure F — extension: uncertain k-means (lossless P̄ reduction)",
      "Ecost = kmeans(P̄) + Σ Var_i exactly; the variance floor is an "
      "absolute lower bound");

  TablePrinter table({"family", "spread", "expected cost", "surrogate obj",
                      "variance floor", "identity gap", "floor share"});
  for (auto family : {exper::Family::kUniform, exper::Family::kClustered}) {
    for (double spread : {0.2, 1.0, 3.0}) {
      exper::InstanceSpec spec;
      spec.family = family;
      spec.n = 80;
      spec.z = 4;
      spec.k = 4;
      spec.spread = spread;
      spec.seed = 47;
      auto dataset = exper::MakeInstance(spec);
      UKC_CHECK(dataset.ok());
      core::UncertainKMeansOptions options;
      options.k = spec.k;
      options.lloyd.restarts = 4;
      auto solution = core::SolveUncertainKMeans(&dataset.value(), options);
      UKC_CHECK(solution.ok()) << solution.status();
      const double gap =
          std::abs(solution->expected_cost -
                   (solution->surrogate_objective + solution->variance_floor));
      table.AddRowValues(exper::FamilyToString(family), spread,
                         solution->expected_cost, solution->surrogate_objective,
                         solution->variance_floor, gap,
                         solution->variance_floor / solution->expected_cost);
    }
  }
  table.Print(std::cout);
  std::cout
      << "\nReading: 'identity gap' is the numerical error of\n"
         "  E[sum d^2] = kmeans(expected points) + variance floor\n"
         "and should be ~1e-10 or smaller. 'floor share' shows the cost\n"
         "fraction that NO algorithm can remove; as spread grows the\n"
         "problem is increasingly about the irreducible uncertainty, not\n"
         "center placement — the same effect Figure C observes for the\n"
         "k-center max objective.\n";
  return 0;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
