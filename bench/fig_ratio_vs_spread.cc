// Figure B (supplementary): empirical approximation quality as the
// uncertainty spread grows. For tight supports the surrogate pipeline
// is near-optimal; the theorems' constants only bind when each point's
// location cloud is comparable to the inter-cluster distance. Ratios
// are measured against the certified lower bound (so they overstate the
// true ratios) on mid-size instances, and against the exact unrestricted
// optimum on tiny ones.

#include <iostream>

#include "bench/bench_common.h"

namespace ukc {
namespace {

int Run() {
  bench::PrintBanner(
      "Figure B — empirical ratio vs uncertainty spread",
      "pipeline stays near-optimal for tight supports; constants bind "
      "only at extreme spread");

  std::cout << "Series 1: tiny instances (ratio vs exact unrestricted "
               "optimum), ED and EP rules, exact certain solver\n";
  TablePrinter tiny({"spread", "ED ratio mean", "ED max", "EP ratio mean",
                     "EP max"});
  for (double spread : {0.1, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    RunningStats ed_ratios;
    RunningStats ep_ratios;
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      exper::InstanceSpec spec;
      spec.family = exper::Family::kClustered;
      spec.n = 5;
      spec.z = 2;
      spec.k = 2;
      spec.spread = spread;
      spec.seed = seed;
      core::UncertainKCenterOptions options;
      options.k = 2;
      options.certain.kind = solver::CertainSolverKind::kExact;
      options.rule = cost::AssignmentRule::kExpectedDistance;
      auto ed = bench::MeasureAgainstTinyUnrestricted(spec, options);
      options.rule = cost::AssignmentRule::kExpectedPoint;
      auto ep = bench::MeasureAgainstTinyUnrestricted(spec, options);
      UKC_CHECK(ed.ok() && ep.ok());
      ed_ratios.Add(ed->ratio);
      ep_ratios.Add(ep->ratio);
    }
    tiny.AddRowValues(spread, ed_ratios.Mean(), ed_ratios.Max(),
                      ep_ratios.Mean(), ep_ratios.Max());
  }
  tiny.Print(std::cout);

  std::cout << "\nSeries 2: mid-size instances (cost / certified lower "
               "bound), Gonzalez pipeline\n";
  TablePrinter mid({"spread", "EcostED", "lower bound", "cost/LB"});
  for (double spread : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    exper::InstanceSpec spec;
    spec.family = exper::Family::kClustered;
    spec.n = 120;
    spec.z = 4;
    spec.k = 4;
    spec.spread = spread;
    spec.seed = 17;
    core::UncertainKCenterOptions options;
    options.k = spec.k;
    options.rule = cost::AssignmentRule::kExpectedDistance;
    auto sample = bench::MeasureAgainstLowerBound(spec, options);
    UKC_CHECK(sample.ok()) << sample.status();
    mid.AddRowValues(spread, sample->algorithm_cost, sample->reference,
                     sample->ratio);
  }
  mid.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
