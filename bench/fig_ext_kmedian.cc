// Figure E (extension; the paper's conclusion announces k-median as
// future work): uncertain k-median via (a) the exact expected-distance
// matrix reduction with local search, (b) the same reduction solved
// exactly (tiny instances), and (c) the paper's surrogate recipe
// transplanted to k-median. Shape claims: (a) is near-exact, (c) pays a
// small constant for the surrogate compression but runs on n rather
// than Σ z_i facilities.

#include <iostream>

#include "bench/bench_common.h"
#include "core/kmedian.h"

namespace ukc {
namespace {

int Run() {
  bench::PrintBanner(
      "Figure E — extension: uncertain k-median (paper's future work)",
      "exact matrix reduction ~= optimal; surrogate recipe within a "
      "small constant");

  std::cout << "Tiny instances (exact reference available):\n";
  TablePrinter tiny({"family", "local/exact mean", "local/exact max",
                     "surrogate/exact mean", "surrogate/exact max"});
  for (auto family : {exper::Family::kUniform, exper::Family::kClustered,
                      exper::Family::kGridGraph}) {
    RunningStats local_ratio;
    RunningStats surrogate_ratio;
    for (uint64_t seed = 1; seed <= 6; ++seed) {
      exper::InstanceSpec spec;
      spec.family = family;
      spec.n = 7;
      spec.z = 3;
      spec.k = 2;
      spec.seed = seed;
      auto dataset = exper::MakeInstance(spec);
      UKC_CHECK(dataset.ok());
      const auto candidates = dataset->LocationSites();
      core::UncertainKMedianOptions options;
      options.k = 2;
      options.method = core::KMedianMethod::kExpectedMatrixExact;
      auto exact =
          core::SolveUncertainKMedian(&dataset.value(), candidates, options);
      options.method = core::KMedianMethod::kExpectedMatrixLocalSearch;
      auto local =
          core::SolveUncertainKMedian(&dataset.value(), candidates, options);
      options.method = core::KMedianMethod::kSurrogateLocalSearch;
      auto surrogate =
          core::SolveUncertainKMedian(&dataset.value(), candidates, options);
      UKC_CHECK(exact.ok() && local.ok() && surrogate.ok());
      local_ratio.Add(local->expected_cost / exact->expected_cost);
      surrogate_ratio.Add(surrogate->expected_cost / exact->expected_cost);
    }
    tiny.AddRowValues(exper::FamilyToString(family), local_ratio.Mean(),
                      local_ratio.Max(), surrogate_ratio.Mean(),
                      surrogate_ratio.Max());
  }
  tiny.Print(std::cout);

  std::cout << "\nMid-size instances: cost and wall time of the two "
               "practical methods:\n";
  TablePrinter mid({"family", "n", "matrix cost", "matrix ms",
                    "surrogate cost", "surrogate ms"});
  for (auto family : {exper::Family::kClustered, exper::Family::kGridGraph}) {
    exper::InstanceSpec spec;
    spec.family = family;
    spec.n = 60;
    spec.z = 4;
    spec.k = 4;
    spec.seed = 19;
    auto run = [&](core::KMedianMethod method, double* millis) {
      auto dataset = exper::MakeInstance(spec);
      UKC_CHECK(dataset.ok());
      const auto candidates = dataset->LocationSites();
      core::UncertainKMedianOptions options;
      options.k = spec.k;
      options.method = method;
      Stopwatch stopwatch;
      auto solution =
          core::SolveUncertainKMedian(&dataset.value(), candidates, options);
      UKC_CHECK(solution.ok()) << solution.status();
      *millis = stopwatch.ElapsedMillis();
      return solution->expected_cost;
    };
    double matrix_ms = 0.0;
    double surrogate_ms = 0.0;
    const double matrix_cost =
        run(core::KMedianMethod::kExpectedMatrixLocalSearch, &matrix_ms);
    const double surrogate_cost =
        run(core::KMedianMethod::kSurrogateLocalSearch, &surrogate_ms);
    mid.AddRowValues(exper::FamilyToString(family), static_cast<int>(spec.n),
                     matrix_cost, matrix_ms, surrogate_cost, surrogate_ms);
  }
  mid.Print(std::cout);
  return 0;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
