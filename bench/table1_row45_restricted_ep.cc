// Table 1, rows 4-5: restricted assigned k-center in Euclidean space
// under the expected-point (EP) assignment.
//
//   row 4: Gonzalez-plugged pipeline (f = 2), O(nz + n log k), factor 4
//   row 5: (1+eps)-plugged pipeline (exact, eps = 0), factor 3 + eps
//
// Also reports the head-to-head between the ED and EP rules with shared
// centers: the EP rule's stronger constant usually (not always — the
// guarantees compare to different optima) shows up empirically.

#include <iostream>

#include "bench/bench_common.h"

namespace ukc {
namespace {

int Run() {
  bench::PrintBanner(
      "Table 1, rows 4-5 — restricted assigned k-center, Euclidean, EP rule",
      "factor 4 with Gonzalez (f=2); factor 3+eps with a (1+eps) solver "
      "(Theorem 2.2, EP)");

  TablePrinter table({"certain solver", "claimed", "family", "ratio mean",
                      "ratio max", "ok", "ms/instance"});
  bool all_ok = true;
  struct Config {
    solver::CertainSolverKind kind;
    double claimed;
    const char* label;
  };
  for (const Config& config :
       {Config{solver::CertainSolverKind::kGonzalez, 4.0, "gonzalez (f=2)"},
        Config{solver::CertainSolverKind::kExact, 3.0, "exact (f=1, eps=0)"},
        Config{solver::CertainSolverKind::kGridEpsilon, 3.25,
               "grid-eps (f=1.25)"}}) {
    for (auto family : {exper::Family::kUniform, exper::Family::kClustered,
                        exper::Family::kOutlier}) {
      RunningStats ratios;
      RunningStats times;
      for (uint64_t seed = 1; seed <= 8; ++seed) {
        exper::InstanceSpec spec;
        spec.family = family;
        spec.n = 5;
        spec.z = 3;
        spec.dim = 2;
        spec.k = 2;
        spec.spread = 0.8;
        spec.seed = seed;
        core::UncertainKCenterOptions options;
        options.k = spec.k;
        options.rule = cost::AssignmentRule::kExpectedPoint;
        options.certain.kind = config.kind;
        auto sample = bench::MeasureAgainstTinyRestricted(spec, options);
        UKC_CHECK(sample.ok()) << sample.status();
        ratios.Add(sample->ratio);
        times.Add(sample->seconds * 1e3);
      }
      const bool ok = ratios.Max() <= config.claimed + 1e-9;
      all_ok = all_ok && ok;
      table.AddRowValues(config.label, config.claimed,
                         exper::FamilyToString(family), ratios.Mean(),
                         ratios.Max(), ok ? "yes" : "NO", times.Mean());
    }
  }
  table.Print(std::cout);

  // ED vs EP with the same Gonzalez centers, on mid-size instances.
  std::cout << "\nED vs EP expected cost with shared Gonzalez centers:\n";
  TablePrinter duel({"family", "n", "EcostED", "EcostEP", "EP/ED"});
  for (auto family : {exper::Family::kUniform, exper::Family::kClustered,
                      exper::Family::kOutlier}) {
    exper::InstanceSpec spec;
    spec.family = family;
    spec.n = 80;
    spec.z = 4;
    spec.k = 4;
    spec.seed = 9;
    auto ed_dataset = exper::MakeInstance(spec);
    auto ep_dataset = exper::MakeInstance(spec);
    UKC_CHECK(ed_dataset.ok() && ep_dataset.ok());
    core::UncertainKCenterOptions options;
    options.k = spec.k;
    options.rule = cost::AssignmentRule::kExpectedDistance;
    auto ed = core::SolveUncertainKCenter(&ed_dataset.value(), options);
    options.rule = cost::AssignmentRule::kExpectedPoint;
    auto ep = core::SolveUncertainKCenter(&ep_dataset.value(), options);
    UKC_CHECK(ed.ok() && ep.ok());
    duel.AddRowValues(exper::FamilyToString(family), static_cast<int>(spec.n),
                      ed->expected_cost, ep->expected_cost,
                      ep->expected_cost / ed->expected_cost);
  }
  duel.Print(std::cout);
  std::cout << (all_ok ? "\nAll measured ratios within the claimed factors.\n"
                       : "\nBOUND VIOLATION DETECTED\n");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
