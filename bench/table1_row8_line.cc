// Table 1, row 8: unrestricted assigned k-center on the line (R^1),
// factor 3, running time O(zn log zn + n log k log n) via Wang–Zhang.
//
// Our reproduction solves the restricted-ED problem on the line with
// alternating convex optimization (see core/line_solver.h for the
// substitution rationale) and inherits the factor-3 guarantee from
// Theorem 2.3. Part A: ratio vs the exact unrestricted optimum on tiny
// instances. Part B: running-time scaling in n and z.

#include <iostream>

#include "bench/bench_common.h"
#include "core/line_solver.h"
#include "uncertain/generators.h"

namespace ukc {
namespace {

int Run() {
  bench::PrintBanner(
      "Table 1, row 8 — unrestricted assigned k-center in R^1",
      "restricted-ED exact solver + Theorem 2.3 => factor 3 vs the "
      "unrestricted optimum");

  TablePrinter table({"n", "z", "k", "ratio mean", "ratio max", "claim", "ok",
                      "ms/instance"});
  bool all_ok = true;
  for (size_t z : {2u, 3u}) {
    RunningStats ratios;
    RunningStats times;
    for (uint64_t seed = 1; seed <= 8; ++seed) {
      auto dataset = uncertain::GenerateLineInstance(
          5, z, 25.0, 2.5, uncertain::ProbabilityShape::kRandom, seed);
      UKC_CHECK(dataset.ok()) << dataset.status();
      Stopwatch stopwatch;
      core::LineSolverOptions options;
      options.k = 2;
      auto solution = core::SolveLineKCenterED(&dataset.value(), options);
      UKC_CHECK(solution.ok()) << solution.status();
      times.Add(stopwatch.ElapsedMillis());
      auto candidates = core::DefaultCandidateSites(&dataset.value());
      UKC_CHECK(candidates.ok()) << candidates.status();
      auto reference =
          core::ExactUnrestrictedAssigned(&dataset.value(), 2, *candidates);
      UKC_CHECK(reference.ok()) << reference.status();
      ratios.Add(solution->expected_cost / reference->expected_cost);
    }
    const bool ok = ratios.Max() <= 3.0 + 1e-9;
    all_ok = all_ok && ok;
    table.AddRowValues(5, static_cast<int>(z), 2, ratios.Mean(), ratios.Max(),
                       3.0, ok ? "yes" : "NO", times.Mean());
  }
  table.Print(std::cout);

  std::cout << "\nRunning-time scaling of the line solver:\n";
  TablePrinter scaling({"n", "z", "k", "ms"});
  for (size_t n : {100u, 200u, 400u}) {
    for (size_t z : {4u}) {
      auto dataset = uncertain::GenerateLineInstance(
          n, z, 1000.0, 5.0, uncertain::ProbabilityShape::kRandom, 3);
      UKC_CHECK(dataset.ok());
      Stopwatch stopwatch;
      core::LineSolverOptions options;
      options.k = 5;
      options.restarts = 1;
      options.max_rounds = 12;
      options.ternary_iterations = 60;
      auto solution = core::SolveLineKCenterED(&dataset.value(), options);
      UKC_CHECK(solution.ok()) << solution.status();
      scaling.AddRowValues(static_cast<int>(n), static_cast<int>(z), 5,
                           stopwatch.ElapsedMillis());
    }
  }
  scaling.Print(std::cout);
  std::cout << (all_ok ? "\nAll measured ratios within the claimed factor 3.\n"
                       : "\nBOUND VIOLATION DETECTED\n");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace ukc

int main() { return ukc::Run(); }
