#!/usr/bin/env bash
# Runs the google-benchmark micro-benchmarks and writes BENCH_micro.json
# at the repo root, so the performance trajectory of the hot paths is
# tracked in-tree PR over PR. Extra arguments are forwarded to
# micro_bench (e.g. --benchmark_filter=BM_ExactExpectedCost).
#
#   bench/run_bench.sh [micro_bench args...]
#
# Set BUILD_DIR to reuse an existing build tree (defaults to ./build).

set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
build="${BUILD_DIR:-$root/build}"

# Always (re)build so the recorded numbers match the working tree; the
# incremental build is a no-op when nothing changed.
if [[ ! -d "$build" ]]; then
  cmake -B "$build" -S "$root"
fi
cmake --build "$build" -j --target micro_bench

# Provenance recorded into the JSON context (micro_bench main): the
# commit the numbers were measured at, plus thread count / sizes.
UKC_GIT_SHA="$(git -C "$root" rev-parse --short HEAD 2>/dev/null || echo unknown)" \
"$build/micro_bench" \
  --benchmark_out="$root/BENCH_micro.json" \
  --benchmark_out_format=json \
  "$@"

echo "Wrote $root/BENCH_micro.json"
