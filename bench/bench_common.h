// Shared glue for the table/figure reproduction binaries: standard
// header printing and the ratio-measurement loops used by several
// benches.

#ifndef UKC_BENCH_BENCH_COMMON_H_
#define UKC_BENCH_BENCH_COMMON_H_

#include <iostream>
#include <string>

#include "common/check.h"
#include "common/stats.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "core/exact_tiny.h"
#include "core/uncertain_kcenter.h"
#include "exper/instances.h"
#include "exper/reference.h"

namespace ukc {
namespace bench {

/// Prints the standard bench banner.
inline void PrintBanner(const std::string& title, const std::string& claim) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "Paper claim: " << claim << "\n"
            << "==============================================================\n";
}

/// Result of one ratio measurement.
struct RatioSample {
  double algorithm_cost = 0.0;
  double reference = 0.0;
  double ratio = 0.0;
  double seconds = 0.0;
};

/// Runs the pipeline on a fresh instance and measures the ratio against
/// the exact unrestricted optimum over the dense candidate set (tiny
/// instances only).
inline Result<RatioSample> MeasureAgainstTinyUnrestricted(
    const exper::InstanceSpec& spec, const core::UncertainKCenterOptions& options) {
  UKC_ASSIGN_OR_RETURN(uncertain::UncertainDataset dataset,
                       exper::MakeInstance(spec));
  Stopwatch stopwatch;
  UKC_ASSIGN_OR_RETURN(core::UncertainKCenterSolution solution,
                       core::SolveUncertainKCenter(&dataset, options));
  RatioSample sample;
  sample.seconds = stopwatch.ElapsedSeconds();
  sample.algorithm_cost = solution.expected_cost;
  UKC_ASSIGN_OR_RETURN(std::vector<metric::SiteId> candidates,
                       core::DefaultCandidateSites(&dataset));
  UKC_ASSIGN_OR_RETURN(
      core::ExactUncertainSolution reference,
      core::ExactUnrestrictedAssigned(&dataset, options.k, candidates));
  sample.reference = reference.expected_cost;
  sample.ratio = sample.reference > 0.0
                     ? sample.algorithm_cost / sample.reference
                     : 1.0;
  return sample;
}

/// Same, but against the exact *restricted* optimum under the pipeline's
/// own rule.
inline Result<RatioSample> MeasureAgainstTinyRestricted(
    const exper::InstanceSpec& spec, const core::UncertainKCenterOptions& options) {
  UKC_ASSIGN_OR_RETURN(uncertain::UncertainDataset dataset,
                       exper::MakeInstance(spec));
  Stopwatch stopwatch;
  UKC_ASSIGN_OR_RETURN(core::UncertainKCenterSolution solution,
                       core::SolveUncertainKCenter(&dataset, options));
  RatioSample sample;
  sample.seconds = stopwatch.ElapsedSeconds();
  sample.algorithm_cost = solution.expected_cost;
  UKC_ASSIGN_OR_RETURN(std::vector<metric::SiteId> candidates,
                       core::DefaultCandidateSites(&dataset));
  UKC_ASSIGN_OR_RETURN(core::ExactUncertainSolution reference,
                       core::ExactRestrictedAssigned(&dataset, options.k,
                                                     options.rule, candidates));
  sample.reference = reference.expected_cost;
  sample.ratio = sample.reference > 0.0
                     ? sample.algorithm_cost / sample.reference
                     : 1.0;
  return sample;
}

/// Ratio against the certified instance lower bound (any size).
inline Result<RatioSample> MeasureAgainstLowerBound(
    const exper::InstanceSpec& spec, const core::UncertainKCenterOptions& options) {
  UKC_ASSIGN_OR_RETURN(uncertain::UncertainDataset dataset,
                       exper::MakeInstance(spec));
  Stopwatch stopwatch;
  UKC_ASSIGN_OR_RETURN(core::UncertainKCenterSolution solution,
                       core::SolveUncertainKCenter(&dataset, options));
  RatioSample sample;
  sample.seconds = stopwatch.ElapsedSeconds();
  sample.algorithm_cost = solution.expected_cost;
  UKC_ASSIGN_OR_RETURN(exper::LowerBoundReport bound,
                       exper::UnrestrictedLowerBound(&dataset, options.k));
  sample.reference = bound.combined;
  sample.ratio = sample.reference > 0.0
                     ? sample.algorithm_cost / sample.reference
                     : 1.0;
  return sample;
}

/// Aggregates samples into "mean (max)" strings and asserts the claim.
struct RatioAggregate {
  RunningStats stats;
  double claimed = 0.0;
  bool WithinClaim() const { return stats.Max() <= claimed + 1e-9; }
};

}  // namespace bench
}  // namespace ukc

#endif  // UKC_BENCH_BENCH_COMMON_H_
