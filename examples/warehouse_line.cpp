// Scenario: depot placement along a rail corridor (the R^1 case,
// Table 1 row 8).
//
//   build/examples/warehouse_line [--n=40] [--k=3]
//
// Demand sites sit along a single rail line; each day's pickup point
// for a client is drawn from a small set of sidings with known
// frequencies. The 1-D solver places k depots minimizing the expected
// worst pickup distance under the ED assignment, which by Theorem 2.3
// is a 3-approximation for the fully unrestricted problem. The example
// also saves/reloads the instance to demonstrate dataset serialization.

#include <iostream>
#include <sstream>

#include "common/flags.h"
#include "core/line_solver.h"
#include "core/uncertain_kcenter.h"
#include "uncertain/generators.h"
#include "uncertain/io.h"

int main(int argc, char** argv) {
  int64_t n = 40;
  int64_t k = 3;
  int64_t seed = 11;
  ukc::FlagParser flags;
  flags.AddInt("n", &n, "number of clients along the corridor");
  flags.AddInt("k", &k, "number of depots");
  flags.AddInt("seed", &seed, "random seed");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status << "\n" << flags.Usage("warehouse_line");
    return 1;
  }

  auto dataset = ukc::uncertain::GenerateLineInstance(
      static_cast<size_t>(n), /*z=*/4, /*length=*/200.0, /*spread=*/6.0,
      ukc::uncertain::ProbabilityShape::kRandom, static_cast<uint64_t>(seed));
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }

  // Round-trip through the text format (what a deployment would store).
  std::stringstream buffer;
  if (auto status = ukc::uncertain::SaveDataset(*dataset, buffer);
      !status.ok()) {
    std::cerr << status << "\n";
    return 1;
  }
  auto reloaded = ukc::uncertain::LoadDataset(buffer);
  if (!reloaded.ok()) {
    std::cerr << reloaded.status() << "\n";
    return 1;
  }
  std::cout << "Corridor instance (round-tripped through the text format): "
            << reloaded->ToString() << "\n\n";

  // Dedicated 1-D solver.
  ukc::core::LineSolverOptions line_options;
  line_options.k = static_cast<size_t>(k);
  auto line = ukc::core::SolveLineKCenterED(&reloaded.value(), line_options);
  if (!line.ok()) {
    std::cerr << line.status() << "\n";
    return 1;
  }
  std::cout << "1-D solver depots at:";
  for (double c : line->center_coordinates) std::cout << " " << c;
  std::cout << "\nExpected worst pickup distance: " << line->expected_cost
            << "\n";
  std::cout << "Guarantee: <= 3x the unrestricted optimum (Theorem 2.3 on "
               "top of the exact restricted-ED solution)\n\n";

  // The generic d-dimensional pipeline on the same instance, for
  // comparison: same guarantee family, weaker in 1-D practice.
  ukc::core::UncertainKCenterOptions generic;
  generic.k = static_cast<size_t>(k);
  generic.rule = ukc::cost::AssignmentRule::kExpectedDistance;
  auto pipeline = ukc::core::SolveUncertainKCenter(&reloaded.value(), generic);
  if (!pipeline.ok()) {
    std::cerr << pipeline.status() << "\n";
    return 1;
  }
  std::cout << "Generic pipeline (Gonzalez + ED) on the same instance: "
            << pipeline->expected_cost << "\n";
  std::cout << "1-D specialist vs generic: "
            << line->expected_cost / pipeline->expected_cost
            << "x (values < 1 mean the specialist wins)\n";
  return 0;
}
