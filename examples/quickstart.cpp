// Quickstart: build an uncertain dataset by hand, run the paper's
// pipeline, and read every field of the solution.
//
//   build/examples/quickstart
//
// Three delivery drones report their positions with noise: each drone
// is an uncertain point with a few possible locations and
// probabilities. We place k = 2 charging stations minimizing the
// expected worst-case distance any drone has to travel.

#include <iostream>
#include <memory>

#include "core/uncertain_kcenter.h"
#include "cost/expected_cost.h"
#include "metric/euclidean_space.h"
#include "uncertain/dataset.h"

using ukc::core::SolveUncertainKCenter;
using ukc::core::UncertainKCenterOptions;
using ukc::geometry::Point;
using ukc::metric::EuclideanSpace;
using ukc::metric::SiteId;
using ukc::uncertain::Location;
using ukc::uncertain::UncertainDataset;
using ukc::uncertain::UncertainPoint;

int main() {
  // 1. A 2-D Euclidean space holding every possible drone location.
  auto space = std::make_shared<EuclideanSpace>(2);

  // 2. Each drone is a discrete distribution over locations. Site ids
  //    come from registering points with the space.
  auto make_drone = [&](std::initializer_list<std::pair<Point, double>> spots)
      -> UncertainPoint {
    std::vector<Location> locations;
    for (const auto& [point, probability] : spots) {
      locations.push_back(Location{space->AddPoint(point), probability});
    }
    auto drone = UncertainPoint::Build(std::move(locations));
    if (!drone.ok()) {
      std::cerr << "bad drone: " << drone.status() << "\n";
      std::exit(1);
    }
    return std::move(drone).value();
  };

  std::vector<UncertainPoint> drones;
  drones.push_back(make_drone({{Point{0.0, 0.0}, 0.6},
                               {Point{1.0, 0.5}, 0.3},
                               {Point{0.5, 9.0}, 0.1}}));  // Sometimes far.
  drones.push_back(make_drone({{Point{0.5, 1.0}, 0.8}, {Point{1.5, 1.5}, 0.2}}));
  drones.push_back(make_drone({{Point{10.0, 10.0}, 0.5},
                               {Point{11.0, 10.5}, 0.5}}));

  auto dataset = UncertainDataset::Build(space, std::move(drones));
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  std::cout << "Instance: " << dataset->ToString() << "\n\n";

  // 3. Run the paper's pipeline: expected-point surrogates, Gonzalez
  //    clustering, expected-distance assignment.
  UncertainKCenterOptions options;
  options.k = 2;
  options.rule = ukc::cost::AssignmentRule::kExpectedDistance;
  options.evaluate_unassigned = true;
  auto solution = SolveUncertainKCenter(&dataset.value(), options);
  if (!solution.ok()) {
    std::cerr << solution.status() << "\n";
    return 1;
  }

  // 4. Inspect the solution.
  std::cout << "Chosen centers:\n";
  for (SiteId c : solution->centers) {
    std::cout << "  site " << c << " at "
              << dataset->euclidean()->point(c).ToString() << "\n";
  }
  std::cout << "Assignment (drone -> center site):\n";
  for (size_t i = 0; i < solution->assignment.size(); ++i) {
    std::cout << "  drone " << i << " -> site " << solution->assignment[i]
              << "\n";
  }
  std::cout << "Exact expected cost (assigned):   " << solution->expected_cost
            << "\n";
  std::cout << "Exact expected cost (unassigned): "
            << solution->unassigned_cost << "\n";
  std::cout << "Certain-solver radius on surrogates: "
            << solution->certain_radius << " (" << solution->certain_algorithm
            << ", factor " << solution->certain_factor << ")\n";
  for (const auto& bound : solution->bounds) {
    std::cout << "Guarantee: cost <= " << bound.factor << " x "
              << ukc::core::BoundReferenceToString(bound.reference) << "  ["
              << bound.theorem << "]\n";
  }

  // 5. Cross-check the reported cost with an independent Monte-Carlo
  //    estimate.
  ukc::Rng rng(7);
  auto estimate = ukc::cost::MonteCarloAssignedCost(
      *dataset, solution->assignment, 100000, rng);
  if (estimate.ok()) {
    std::cout << "Monte-Carlo check: " << estimate->mean << " +/- "
              << estimate->std_error << " (100k samples)\n";
  }
  return 0;
}
