// Command-line front end: run any pipeline configuration on a dataset
// file (or a generated instance) and print a report.
//
//   build/examples/ukc_cli --input=data.ukc --k=4 --rule=ED
//   build/examples/ukc_cli --generate=clustered --n=200 --k=5 --rule=EP
//
// Flags:
//   --input      path to a dataset in the ukc text format (see
//                uncertain/io.h); mutually exclusive with --generate
//   --generate   instance family: uniform|clustered|outlier|line
//   --n, --z, --dim, --spread, --seed   generator parameters
//   --k          number of centers
//   --rule       ED | EP | OC
//   --surrogate  auto | expected-point | one-center | modal
//   --solver     gonzalez | hochbaum-shmoys | gonzalez-refined | exact
//   --unassigned also evaluate the unassigned objective
//   --mc         Monte-Carlo cross-check samples (0 = off)
//   --threads    worker threads for the parallel stages
//   --metrics-out  write the run's metrics registry (src/obs/) to this
//                  file on exit: Prometheus text, or JSON when the
//                  path ends in .json
//
// Streaming (out-of-core) mode:
//   --stream         run the chunked coreset pipeline (stream/) instead
//                    of materializing the instance; with --input the
//                    file is read twice and never loaded whole
//   --chunk-size     points per ingested chunk
//   --shards         shard coresets built concurrently (0 = threads)
//   --max-cells      coreset size target
//   --base-cell-width level-0 grid width (raise for large coordinates)
//   --verify-buckets resolution of the verified-cost bracket
//   --checkpoint     crash-recovery sidecar path (docs/operations.md);
//                    re-running the same command after an interruption
//                    resumes the ingest from the last saved state
//   --checkpoint-every  batches between checkpoint saves
//   --retry-attempts    total tries per batch read (1 = no retry)
//
//   build/examples/ukc_cli --input=data.ukc --k=8 --stream --chunk-size=8192
//
// Serving mode (resident multi-tenant core, serve/):
//   --serve            drive a simulated serving session: tenants
//                      absorb generated appends through the bounded
//                      admission queue while queries (centers /
//                      candidate cost / bracket) interleave
//   --serve-tenants    resident tenant streams
//   --serve-ops        mixed operations to drive
//   --serve-queue-cap  per-tenant admission queue bound (overload
//                      beyond it sheds the newest submission)
//   --serve-snapshot-dir   directory for per-tenant failover sidecars
//                          (empty = snapshots off); the session ends
//                          with a kill-and-restore of tenant 0
//   --serve-snapshot-every acked appends between cadence snapshots
//   --deadline-us      per-query wall-clock budget (0 = unbounded)
//   --deadline-checks  per-query deterministic check budget (0 = off;
//                      overrides --deadline-us — the reproducible form)
//
//   build/examples/ukc_cli --serve --serve-tenants=4 --serve-ops=2000 \
//       --serve-snapshot-dir=/tmp/ukc --deadline-us=5000

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/deadline.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/uncertain_kcenter.h"
#include "cost/expected_cost.h"
#include "exper/instances.h"
#include "obs/metrics.h"
#include "serve/registry.h"
#include "stream/pipeline.h"
#include "uncertain/io.h"

namespace {

int Fail(const ukc::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

// Shared flag parsers, so the stream and direct paths cannot drift.
ukc::Result<ukc::exper::Family> ParseFamily(const std::string& name) {
  if (name == "uniform") return ukc::exper::Family::kUniform;
  if (name == "clustered") return ukc::exper::Family::kClustered;
  if (name == "outlier") return ukc::exper::Family::kOutlier;
  if (name == "line") return ukc::exper::Family::kLine;
  return ukc::Status::InvalidArgument("unknown family " + name);
}

ukc::Result<ukc::exper::InstanceSpec> BuildSpec(const std::string& family,
                                                int64_t n, int64_t z,
                                                int64_t dim, int64_t k,
                                                double spread, int64_t seed) {
  ukc::exper::InstanceSpec spec;
  UKC_ASSIGN_OR_RETURN(spec.family, ParseFamily(family));
  spec.n = static_cast<size_t>(n);
  spec.z = static_cast<size_t>(z);
  spec.dim = static_cast<size_t>(dim);
  spec.k = static_cast<size_t>(k);
  spec.spread = spread;
  spec.seed = static_cast<uint64_t>(seed);
  return spec;
}

ukc::Result<ukc::solver::CertainSolverKind> ParseSolver(const std::string& name,
                                                        bool allow_exact) {
  if (name == "gonzalez") return ukc::solver::CertainSolverKind::kGonzalez;
  if (name == "hochbaum-shmoys") {
    return ukc::solver::CertainSolverKind::kHochbaumShmoys;
  }
  if (name == "gonzalez-refined") {
    return ukc::solver::CertainSolverKind::kGonzalezRefined;
  }
  if (name == "exact") {
    if (allow_exact) return ukc::solver::CertainSolverKind::kExact;
    return ukc::Status::InvalidArgument(
        "the exact solver is not supported in --stream mode (the coreset can "
        "hold thousands of cells)");
  }
  return ukc::Status::InvalidArgument("unknown solver " + name);
}

// A deterministic serving-mode batch: n uncertain points in
// [-10, 10]^dim with 1..3 locations each, a scaled-down cousin of the
// generator instances.
ukc::uncertain::UncertainPointBatch MakeServeBatch(ukc::Rng& rng, size_t n,
                                                  size_t dim) {
  ukc::uncertain::UncertainPointBatch batch;
  batch.dim = dim;
  batch.norm = ukc::metric::Norm::kL2;
  batch.offsets.push_back(0);
  for (size_t i = 0; i < n; ++i) {
    const size_t locations = 1 + rng.Next() % 3;
    double total = 0.0;
    std::vector<double> weights(locations);
    for (double& w : weights) {
      w = rng.UniformDouble(0.1, 1.0);
      total += w;
    }
    for (size_t l = 0; l < locations; ++l) {
      for (size_t d = 0; d < dim; ++d) {
        batch.coords.push_back(rng.UniformDouble(-10.0, 10.0));
      }
      batch.probabilities.push_back(weights[l] / total);
    }
    batch.offsets.push_back(batch.offsets.back() + locations);
  }
  return batch;
}

// Dumps the process-wide metrics registry to `path`: JSON when the
// path ends in ".json", Prometheus text exposition otherwise. Returns
// 0 / 1 as a process exit code contribution.
int WriteMetricsFile(const std::string& path) {
  if (path.empty()) return 0;
  const ukc::obs::MetricsRegistry& registry =
      ukc::obs::MetricsRegistry::Default();
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  // Open (and check) before exporting: a bad path fails fast with the
  // OS error instead of formatting an export nobody will receive.
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    std::cerr << "error: cannot open metrics file " << path << ": "
              << std::strerror(errno) << "\n";
    return 1;
  }
  out << (json ? registry.ExportJson() : registry.ExportPrometheus());
  out.flush();
  if (!out) {
    std::cerr << "error: cannot write metrics to " << path << ": "
              << std::strerror(errno) << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string generate = "clustered";
  int64_t n = 100;
  int64_t z = 4;
  int64_t dim = 2;
  double spread = 1.0;
  int64_t seed = 1;
  int64_t k = 3;
  std::string rule = "ED";
  std::string surrogate = "auto";
  std::string solver_name = "gonzalez";
  bool unassigned = false;
  int64_t mc = 0;
  int64_t threads = 1;
  bool serve_mode = false;
  int64_t serve_tenants = 4;
  int64_t serve_ops = 1000;
  int64_t serve_queue_cap = 64;
  std::string serve_snapshot_dir;
  int64_t serve_snapshot_every = 16;
  int64_t deadline_us = 0;
  int64_t deadline_checks = 0;
  int64_t window = 0;
  bool stream = false;
  int64_t chunk_size = 4096;
  int64_t shards = 0;
  int64_t max_cells = 4096;
  double base_cell_width = 1e-9;
  int64_t verify_buckets = 4096;
  std::string checkpoint;
  int64_t checkpoint_every = 64;
  int64_t retry_attempts = 3;
  std::string metrics_out;

  ukc::FlagParser flags;
  flags.AddString("input", &input, "dataset file (ukc text format)");
  flags.AddString("generate", &generate,
                  "instance family when no --input is given");
  flags.AddInt("n", &n, "generated points");
  flags.AddInt("z", &z, "locations per point");
  flags.AddInt("dim", &dim, "dimension");
  flags.AddDouble("spread", &spread, "support spread");
  flags.AddInt("seed", &seed, "generator seed");
  flags.AddInt("k", &k, "number of centers");
  flags.AddString("rule", &rule, "assignment rule: ED|EP|OC");
  flags.AddString("surrogate", &surrogate,
                  "auto|expected-point|one-center|modal");
  flags.AddString("solver", &solver_name,
                  "gonzalez|hochbaum-shmoys|gonzalez-refined|exact");
  flags.AddBool("unassigned", &unassigned, "also evaluate unassigned cost");
  flags.AddInt("mc", &mc, "Monte-Carlo cross-check samples (0 = off)");
  flags.AddInt("threads", &threads, "worker threads (<= 0 = hardware)");
  flags.AddBool("serve", &serve_mode,
                "drive a simulated multi-tenant serving session");
  flags.AddInt("serve-tenants", &serve_tenants, "serving: resident tenants");
  flags.AddInt("serve-ops", &serve_ops, "serving: mixed operations to drive");
  flags.AddInt("serve-queue-cap", &serve_queue_cap,
               "serving: per-tenant admission queue bound");
  flags.AddString("serve-snapshot-dir", &serve_snapshot_dir,
                  "serving: directory for failover sidecars (empty = off)");
  flags.AddInt("serve-snapshot-every", &serve_snapshot_every,
               "serving: acked appends between cadence snapshots");
  flags.AddInt("deadline-us", &deadline_us,
               "serving: per-query wall-clock budget in microseconds (0 = "
               "unbounded)");
  flags.AddInt("deadline-checks", &deadline_checks,
               "serving: deterministic per-query check budget (0 = off; "
               "overrides --deadline-us)");
  flags.AddInt("window", &window,
               "serving: sliding window in points per tenant — points older "
               "than the last N acked are retired deterministically (0 = "
               "keep everything)");
  flags.AddBool("stream", &stream, "run the chunked streaming pipeline");
  flags.AddInt("chunk-size", &chunk_size, "streaming: points per chunk");
  flags.AddInt("shards", &shards, "streaming: shard coresets (0 = threads)");
  flags.AddInt("max-cells", &max_cells, "streaming: coreset size target");
  flags.AddDouble("base-cell-width", &base_cell_width,
                  "streaming: level-0 grid cell width (supports coordinate "
                  "magnitudes up to ~1.76e13 x this)");
  flags.AddInt("verify-buckets", &verify_buckets,
               "streaming: verified-cost bracket resolution");
  flags.AddString("checkpoint", &checkpoint,
                  "streaming: crash-recovery sidecar path (empty = off); an "
                  "interrupted run re-launched with the same flags resumes "
                  "from the last checkpoint");
  flags.AddInt("checkpoint-every", &checkpoint_every,
               "streaming: batches between checkpoint saves");
  flags.AddInt("retry-attempts", &retry_attempts,
               "streaming: total tries per batch read (1 = no retry)");
  flags.AddString("metrics-out", &metrics_out,
                  "write the run's metrics registry to this file on exit "
                  "(Prometheus text; *.json = JSON export)");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status << "\n" << flags.Usage("ukc_cli");
    return 1;
  }

  // Serving mode: a resident multi-tenant session driven by generated
  // appends and queries, reporting throughput, shed/degrade behavior,
  // query latency percentiles, and a closing kill-and-restore.
  if (serve_mode) {
    if (serve_tenants < 1 || serve_ops < 1 || serve_queue_cap < 1 ||
        serve_snapshot_every < 1 || k < 1 || dim < 1 || deadline_us < 0 ||
        deadline_checks < 0) {
      return Fail(ukc::Status::InvalidArgument(
          "--serve needs serve-tenants, serve-ops, serve-queue-cap, "
          "serve-snapshot-every, k, dim >= 1 and non-negative deadlines"));
    }
    if (window < 0) {
      return Fail(ukc::Status::InvalidArgument("--window must be >= 0"));
    }
    ukc::serve::RegistryOptions registry_options;
    registry_options.queue_capacity = static_cast<size_t>(serve_queue_cap);
    registry_options.threads = static_cast<int>(threads);
    ukc::serve::TenantRegistry registry(registry_options);

    std::vector<std::string> ids;
    for (int64_t t = 0; t < serve_tenants; ++t) {
      ukc::serve::TenantConfig config;
      config.dim = static_cast<size_t>(dim);
      config.k = static_cast<size_t>(k);
      config.coreset.max_cells = static_cast<size_t>(max_cells);
      config.coreset.base_cell_width =
          base_cell_width > 1e-9 ? base_cell_width : 1e-3;
      config.snapshot_every_appends =
          static_cast<uint64_t>(serve_snapshot_every);
      config.window_points = static_cast<uint64_t>(window);
      const std::string id = "tenant-" + std::to_string(t);
      if (!serve_snapshot_dir.empty()) {
        config.snapshot_path = serve_snapshot_dir + "/" + id + ".ckpt";
      }
      if (auto created = registry.CreateTenant(id, config); !created.ok()) {
        return Fail(created.status());
      }
      ids.push_back(id);
    }

    const auto make_deadline = [&]() {
      if (deadline_checks > 0) return ukc::Deadline::AfterChecks(deadline_checks);
      if (deadline_us > 0) {
        return ukc::Deadline::After(std::chrono::microseconds(deadline_us));
      }
      return ukc::Deadline();
    };

    using Clock = std::chrono::steady_clock;
    ukc::Rng rng(static_cast<uint64_t>(seed));
    const auto session_start = Clock::now();
    for (int64_t op = 0; op < serve_ops; ++op) {
      const std::string& id = ids[rng.Next() % ids.size()];
      const uint64_t dice = rng.Next() % 100;
      if (dice < 55) {
        (void)registry.SubmitAppend(
            id, MakeServeBatch(rng, 1 + rng.Next() % 4,
                               static_cast<size_t>(dim)));
      } else if (dice < 70) {
        registry.Drain();
      } else if (dice < 85) {
        (void)registry.QueryCenters(id, make_deadline());
      } else if (dice < 95) {
        std::vector<double> candidates(static_cast<size_t>(dim));
        for (double& c : candidates) c = rng.UniformDouble(-10.0, 10.0);
        (void)registry.QueryCandidateCost(id, candidates, 1, make_deadline());
      } else {
        std::vector<double> candidates(static_cast<size_t>(dim));
        for (double& c : candidates) c = rng.UniformDouble(-10.0, 10.0);
        (void)registry.QueryBracket(id, candidates, 1, make_deadline());
      }
    }
    registry.Drain();
    const double session_ms = std::chrono::duration<double, std::milli>(
                                  Clock::now() - session_start)
                                  .count();

    // Closing failover drill: kill-and-restore tenant 0 from its
    // sidecar (the bitwise-replay guarantee itself is asserted by
    // tests/serve_test.cc; here we report the restore cost).
    double restore_ms = -1.0;
    uint64_t restored_epoch = 0;
    if (!serve_snapshot_dir.empty()) {
      const auto restore_start = Clock::now();
      const ukc::Status restored =
          registry.RestoreTenant(ids[0], &restored_epoch);
      if (restored.ok()) {
        restore_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                               restore_start)
                         .count();
      } else {
        std::cerr << "failover drill: " << restored << "\n";
      }
    }

    // The latency report comes off the per-tenant serving histograms
    // (the registry's telemetry, not an ad-hoc side vector): per-shape
    // series merged across tenants into one distribution.
    const ukc::serve::ServeStats& stats = registry.stats();
    const ukc::obs::RegistrySnapshot metrics_snapshot =
        registry.metrics_registry().Snapshot();
    const ukc::obs::HistogramSnapshot query_seconds =
        metrics_snapshot.HistogramTotal("ukc_serve_query_seconds");
    ukc::TablePrinter report({"metric", "value"});
    report.AddRowValues("tenants", static_cast<double>(serve_tenants));
    report.AddRowValues("ops driven", static_cast<double>(serve_ops));
    report.AddRowValues("session ms", session_ms);
    report.AddRowValues("appends applied",
                        static_cast<double>(stats.appends_applied));
    report.AddRowValues("appends shed (overload)",
                        static_cast<double>(stats.appends_shed));
    report.AddRowValues("appends refused (degraded)",
                        static_cast<double>(stats.appends_refused));
    report.AddRowValues("shed rate",
                        stats.appends_submitted == 0
                            ? 0.0
                            : static_cast<double>(stats.appends_shed) /
                                  static_cast<double>(stats.appends_submitted));
    if (window > 0) {
      report.AddRowValues("window points", static_cast<double>(window));
      report.AddRowValues("points expired",
                          static_cast<double>(stats.points_expired));
    }
    report.AddRowValues("snapshots saved",
                        static_cast<double>(stats.snapshots_saved));
    report.AddRowValues("tenants degraded",
                        static_cast<double>(stats.degrade_events));
    report.AddRowValues("tenants recovered",
                        static_cast<double>(stats.recover_events));
    report.AddRowValues("queries answered",
                        static_cast<double>(stats.queries_answered));
    report.AddRowValues("queries deadline-exceeded",
                        static_cast<double>(stats.queries_deadline_exceeded));
    if (ukc::obs::kEnabled) {
      // A quantile landing in the overflow bucket is a lower bound,
      // not an estimate; say so instead of understating the tail.
      const auto quantile_row = [&](const char* name, double q) {
        bool overflow = false;
        const double ms = query_seconds.Quantile(q, &overflow) * 1e3;
        std::ostringstream cell;
        cell << (overflow ? ">= " : "") << ms;
        report.AddRow({name, cell.str()});
      };
      quantile_row("query p50 ms", 0.50);
      quantile_row("query p95 ms", 0.95);
      quantile_row("query p99 ms", 0.99);
      report.AddRowValues("query mean ms", query_seconds.Mean() * 1e3);
    }
    if (restore_ms >= 0.0) {
      report.AddRowValues("failover restore ms", restore_ms);
      report.AddRowValues("failover restored epoch",
                          static_cast<double>(restored_epoch));
    }
    report.Print(std::cout);
    return WriteMetricsFile(metrics_out);
  }

  // Streaming mode: the file path never materializes the dataset; the
  // generated path materializes it once and streams it through the same
  // chunked pipeline (which then also reports the exact cost).
  if (stream) {
    // Reject configurations the streaming pipeline does not honor —
    // silently falling back would misreport what was computed.
    if (rule != "ED") {
      return Fail(ukc::Status::InvalidArgument(
          "--stream supports only --rule=ED (points are re-assigned by "
          "expected distance during the verification pass)"));
    }
    if (surrogate != "auto" && surrogate != "expected-point") {
      return Fail(ukc::Status::InvalidArgument(
          "--stream summarizes points by their expected-point surrogate; "
          "--surrogate=" + surrogate + " is not supported"));
    }
    if (unassigned || mc > 0) {
      return Fail(ukc::Status::InvalidArgument(
          "--unassigned and --mc are not supported in --stream mode"));
    }
    if (k <= 0 || chunk_size <= 0 || max_cells <= 0 || verify_buckets <= 0 ||
        shards < 0 || shards > 65536 || !(base_cell_width > 0.0)) {
      return Fail(ukc::Status::InvalidArgument(
          "--stream needs k, chunk-size, max-cells, verify-buckets >= 1, "
          "shards in [0, 65536] and base-cell-width > 0"));
    }
    if (checkpoint_every <= 0 || retry_attempts <= 0) {
      return Fail(ukc::Status::InvalidArgument(
          "--checkpoint-every and --retry-attempts must be >= 1"));
    }
    ukc::stream::StreamingOptions options;
    options.k = static_cast<size_t>(k);
    options.threads = static_cast<int>(threads);
    options.ingest.chunk_size = static_cast<size_t>(chunk_size);
    options.ingest.shards = static_cast<int>(shards);
    options.ingest.coreset.max_cells = static_cast<size_t>(max_cells);
    options.ingest.coreset.base_cell_width = base_cell_width;
    options.ingest.checkpoint.path = checkpoint;
    options.ingest.checkpoint.every_n_batches =
        static_cast<uint64_t>(checkpoint_every);
    options.ingest.retry.max_attempts = static_cast<int>(retry_attempts);
    options.verify_buckets = static_cast<size_t>(verify_buckets);
    auto solver_kind = ParseSolver(solver_name, /*allow_exact=*/false);
    if (!solver_kind.ok()) return Fail(solver_kind.status());
    options.certain.kind = *solver_kind;
    ukc::stream::StreamingUncertainKCenter solver(options);
    ukc::Result<ukc::stream::StreamingSolution> solution =
        ukc::Status::Internal("unset");
    ukc::Result<ukc::uncertain::UncertainDataset> materialized =
        ukc::Status::Internal("unset");
    if (!input.empty()) {
      solution = solver.SolveFile(input);
    } else {
      auto spec = BuildSpec(generate, n, z, dim, k, spread, seed);
      if (!spec.ok()) return Fail(spec.status());
      materialized = ukc::exper::MakeInstance(*spec);
      if (!materialized.ok()) return Fail(materialized.status());
      solution = solver.SolveDataset(&materialized.value());
    }
    if (!solution.ok()) return Fail(solution.status());

    ukc::TablePrinter report({"metric", "value"});
    // The pipeline clamps k to the coreset size; surface it when fewer
    // centers were solved than requested.
    report.AddRowValues("k (effective)", static_cast<double>(solution->k));
    report.AddRowValues("points ingested",
                        static_cast<double>(solution->ingest_stats.points));
    report.AddRowValues("chunks", static_cast<double>(
                                      solution->ingest_stats.batches));
    if (!checkpoint.empty()) {
      report.AddRowValues("checkpoint saves",
                          static_cast<double>(
                              solution->ingest_stats.checkpoint_saves));
      report.AddRowValues("chunks restored from checkpoint",
                          static_cast<double>(
                              solution->ingest_stats.restored_batches));
    }
    report.AddRowValues("coreset cells",
                        static_cast<double>(solution->coreset_cells));
    report.AddRowValues("coreset level",
                        static_cast<double>(solution->coreset_level));
    report.AddRowValues("coreset error bound", solution->coreset_error_bound);
    report.AddRowValues("coreset memory (KiB)",
                        static_cast<double>(solution->coreset_memory_bytes) /
                            1024.0);
    report.AddRowValues("solve cost (on coreset)", solution->coreset_cost);
    report.AddRowValues("verified cost lower", solution->verified_lower);
    report.AddRowValues("verified cost upper", solution->verified_upper);
    report.AddRowValues("max expected distance",
                        solution->max_expected_distance);
    if (!std::isnan(solution->verified_exact)) {
      report.AddRowValues("verified cost (exact evaluator)",
                          solution->verified_exact);
    }
    report.AddRowValues("ingest ms", solution->timings.ingest_seconds * 1e3);
    report.AddRowValues("solve ms", solution->timings.solve_seconds * 1e3);
    report.AddRowValues("verify ms", solution->timings.verify_seconds * 1e3);
    report.Print(std::cout);
    return WriteMetricsFile(metrics_out);
  }

  // Materialize the dataset.
  ukc::Result<ukc::uncertain::UncertainDataset> dataset =
      ukc::Status::Internal("unset");
  if (!input.empty()) {
    dataset = ukc::uncertain::LoadDatasetFromFile(input);
  } else {
    auto spec = BuildSpec(generate, n, z, dim, k, spread, seed);
    if (!spec.ok()) return Fail(spec.status());
    dataset = ukc::exper::MakeInstance(*spec);
  }
  if (!dataset.ok()) return Fail(dataset.status());
  std::cout << "Instance: " << dataset->ToString() << "\n";

  // Configure the pipeline.
  ukc::core::UncertainKCenterOptions options;
  options.k = static_cast<size_t>(k);
  options.evaluate_unassigned = unassigned;
  options.threads = static_cast<int>(threads);
  if (rule == "ED") {
    options.rule = ukc::cost::AssignmentRule::kExpectedDistance;
  } else if (rule == "EP") {
    options.rule = ukc::cost::AssignmentRule::kExpectedPoint;
  } else if (rule == "OC") {
    options.rule = ukc::cost::AssignmentRule::kOneCenter;
  } else {
    return Fail(ukc::Status::InvalidArgument("unknown rule " + rule));
  }
  if (surrogate == "expected-point") {
    options.surrogate = ukc::core::SurrogateKind::kExpectedPoint;
  } else if (surrogate == "one-center") {
    options.surrogate = ukc::core::SurrogateKind::kOneCenter;
  } else if (surrogate == "modal") {
    options.surrogate = ukc::core::SurrogateKind::kModal;
  } else if (surrogate != "auto") {
    return Fail(ukc::Status::InvalidArgument("unknown surrogate " + surrogate));
  }
  auto solver_kind = ParseSolver(solver_name, /*allow_exact=*/true);
  if (!solver_kind.ok()) return Fail(solver_kind.status());
  options.certain.kind = *solver_kind;

  auto solution = ukc::core::SolveUncertainKCenter(&dataset.value(), options);
  if (!solution.ok()) return Fail(solution.status());

  ukc::TablePrinter report({"metric", "value"});
  report.AddRowValues("expected cost (assigned, exact)",
                      solution->expected_cost);
  if (unassigned) {
    report.AddRowValues("expected cost (unassigned, exact)",
                        solution->unassigned_cost);
  }
  report.AddRowValues("certain radius on surrogates", solution->certain_radius);
  report.AddRow({"certain solver", solution->certain_algorithm});
  report.AddRowValues("certain factor f", solution->certain_factor);
  report.AddRowValues("surrogate ms",
                      solution->timings.surrogate_seconds * 1e3);
  report.AddRowValues("clustering ms",
                      solution->timings.clustering_seconds * 1e3);
  report.AddRowValues("assignment ms",
                      solution->timings.assignment_seconds * 1e3);
  report.AddRowValues("evaluation ms",
                      solution->timings.evaluation_seconds * 1e3);
  report.Print(std::cout);

  for (const auto& bound : solution->bounds) {
    std::cout << "guarantee: cost <= " << bound.factor << " x "
              << ukc::core::BoundReferenceToString(bound.reference) << "  ["
              << bound.theorem << "]\n";
  }

  if (mc > 0) {
    ukc::Rng rng(static_cast<uint64_t>(seed) + 1);
    auto estimate = ukc::cost::MonteCarloAssignedCost(
        *dataset, solution->assignment, mc, rng);
    if (!estimate.ok()) return Fail(estimate.status());
    std::cout << "Monte-Carlo cross-check: " << estimate->mean << " +/- "
              << estimate->std_error << " (" << mc << " samples)\n";
  }
  return WriteMetricsFile(metrics_out);
}
