// Command-line front end: run any pipeline configuration on a dataset
// file (or a generated instance) and print a report.
//
//   build/examples/ukc_cli --input=data.ukc --k=4 --rule=ED
//   build/examples/ukc_cli --generate=clustered --n=200 --k=5 --rule=EP
//
// Flags:
//   --input      path to a dataset in the ukc text format (see
//                uncertain/io.h); mutually exclusive with --generate
//   --generate   instance family: uniform|clustered|outlier|line
//   --n, --z, --dim, --spread, --seed   generator parameters
//   --k          number of centers
//   --rule       ED | EP | OC
//   --surrogate  auto | expected-point | one-center | modal
//   --solver     gonzalez | hochbaum-shmoys | gonzalez-refined | exact
//   --unassigned also evaluate the unassigned objective
//   --mc         Monte-Carlo cross-check samples (0 = off)

#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "core/uncertain_kcenter.h"
#include "cost/expected_cost.h"
#include "exper/instances.h"
#include "uncertain/io.h"

namespace {

int Fail(const ukc::Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string generate = "clustered";
  int64_t n = 100;
  int64_t z = 4;
  int64_t dim = 2;
  double spread = 1.0;
  int64_t seed = 1;
  int64_t k = 3;
  std::string rule = "ED";
  std::string surrogate = "auto";
  std::string solver_name = "gonzalez";
  bool unassigned = false;
  int64_t mc = 0;

  ukc::FlagParser flags;
  flags.AddString("input", &input, "dataset file (ukc text format)");
  flags.AddString("generate", &generate,
                  "instance family when no --input is given");
  flags.AddInt("n", &n, "generated points");
  flags.AddInt("z", &z, "locations per point");
  flags.AddInt("dim", &dim, "dimension");
  flags.AddDouble("spread", &spread, "support spread");
  flags.AddInt("seed", &seed, "generator seed");
  flags.AddInt("k", &k, "number of centers");
  flags.AddString("rule", &rule, "assignment rule: ED|EP|OC");
  flags.AddString("surrogate", &surrogate,
                  "auto|expected-point|one-center|modal");
  flags.AddString("solver", &solver_name,
                  "gonzalez|hochbaum-shmoys|gonzalez-refined|exact");
  flags.AddBool("unassigned", &unassigned, "also evaluate unassigned cost");
  flags.AddInt("mc", &mc, "Monte-Carlo cross-check samples (0 = off)");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status << "\n" << flags.Usage("ukc_cli");
    return 1;
  }

  // Materialize the dataset.
  ukc::Result<ukc::uncertain::UncertainDataset> dataset =
      ukc::Status::Internal("unset");
  if (!input.empty()) {
    dataset = ukc::uncertain::LoadDatasetFromFile(input);
  } else {
    ukc::exper::InstanceSpec spec;
    if (generate == "uniform") {
      spec.family = ukc::exper::Family::kUniform;
    } else if (generate == "clustered") {
      spec.family = ukc::exper::Family::kClustered;
    } else if (generate == "outlier") {
      spec.family = ukc::exper::Family::kOutlier;
    } else if (generate == "line") {
      spec.family = ukc::exper::Family::kLine;
    } else {
      return Fail(ukc::Status::InvalidArgument("unknown family " + generate));
    }
    spec.n = static_cast<size_t>(n);
    spec.z = static_cast<size_t>(z);
    spec.dim = static_cast<size_t>(dim);
    spec.k = static_cast<size_t>(k);
    spec.spread = spread;
    spec.seed = static_cast<uint64_t>(seed);
    dataset = ukc::exper::MakeInstance(spec);
  }
  if (!dataset.ok()) return Fail(dataset.status());
  std::cout << "Instance: " << dataset->ToString() << "\n";

  // Configure the pipeline.
  ukc::core::UncertainKCenterOptions options;
  options.k = static_cast<size_t>(k);
  options.evaluate_unassigned = unassigned;
  if (rule == "ED") {
    options.rule = ukc::cost::AssignmentRule::kExpectedDistance;
  } else if (rule == "EP") {
    options.rule = ukc::cost::AssignmentRule::kExpectedPoint;
  } else if (rule == "OC") {
    options.rule = ukc::cost::AssignmentRule::kOneCenter;
  } else {
    return Fail(ukc::Status::InvalidArgument("unknown rule " + rule));
  }
  if (surrogate == "expected-point") {
    options.surrogate = ukc::core::SurrogateKind::kExpectedPoint;
  } else if (surrogate == "one-center") {
    options.surrogate = ukc::core::SurrogateKind::kOneCenter;
  } else if (surrogate == "modal") {
    options.surrogate = ukc::core::SurrogateKind::kModal;
  } else if (surrogate != "auto") {
    return Fail(ukc::Status::InvalidArgument("unknown surrogate " + surrogate));
  }
  if (solver_name == "gonzalez") {
    options.certain.kind = ukc::solver::CertainSolverKind::kGonzalez;
  } else if (solver_name == "hochbaum-shmoys") {
    options.certain.kind = ukc::solver::CertainSolverKind::kHochbaumShmoys;
  } else if (solver_name == "gonzalez-refined") {
    options.certain.kind = ukc::solver::CertainSolverKind::kGonzalezRefined;
  } else if (solver_name == "exact") {
    options.certain.kind = ukc::solver::CertainSolverKind::kExact;
  } else {
    return Fail(ukc::Status::InvalidArgument("unknown solver " + solver_name));
  }

  auto solution = ukc::core::SolveUncertainKCenter(&dataset.value(), options);
  if (!solution.ok()) return Fail(solution.status());

  ukc::TablePrinter report({"metric", "value"});
  report.AddRowValues("expected cost (assigned, exact)",
                      solution->expected_cost);
  if (unassigned) {
    report.AddRowValues("expected cost (unassigned, exact)",
                        solution->unassigned_cost);
  }
  report.AddRowValues("certain radius on surrogates", solution->certain_radius);
  report.AddRow({"certain solver", solution->certain_algorithm});
  report.AddRowValues("certain factor f", solution->certain_factor);
  report.AddRowValues("surrogate ms",
                      solution->timings.surrogate_seconds * 1e3);
  report.AddRowValues("clustering ms",
                      solution->timings.clustering_seconds * 1e3);
  report.AddRowValues("assignment ms",
                      solution->timings.assignment_seconds * 1e3);
  report.AddRowValues("evaluation ms",
                      solution->timings.evaluation_seconds * 1e3);
  report.Print(std::cout);

  for (const auto& bound : solution->bounds) {
    std::cout << "guarantee: cost <= " << bound.factor << " x "
              << ukc::core::BoundReferenceToString(bound.reference) << "  ["
              << bound.theorem << "]\n";
  }

  if (mc > 0) {
    ukc::Rng rng(static_cast<uint64_t>(seed) + 1);
    auto estimate = ukc::cost::MonteCarloAssignedCost(
        *dataset, solution->assignment, mc, rng);
    if (!estimate.ok()) return Fail(estimate.status());
    std::cout << "Monte-Carlo cross-check: " << estimate->mean << " +/- "
              << estimate->std_error << " (" << mc << " samples)\n";
  }
  return 0;
}
