// Scenario: ambulance staging on a road network (a general metric
// space, exercising the paper's Theorems 2.6/2.7 path).
//
//   build/examples/road_network [--rows=12] [--cols=12] [--n=50] [--k=4]
//
// Incidents occur at uncertain locations: historical data gives, for
// each incident "profile", a distribution over intersections. Distances
// are shortest paths on the weighted road grid — not Euclidean — so the
// expected-point surrogate is unavailable; the pipeline uses each
// profile's 1-center P̃ (the intersection minimizing expected travel
// distance) and the OC assignment, with the 3+2f guarantee of
// Theorem 2.7.

#include <iostream>

#include "common/flags.h"
#include "common/table.h"
#include "core/uncertain_kcenter.h"
#include "exper/reference.h"
#include "uncertain/generators.h"

int main(int argc, char** argv) {
  int64_t rows = 12;
  int64_t cols = 12;
  int64_t n = 50;
  int64_t k = 4;
  int64_t seed = 99;
  ukc::FlagParser flags;
  flags.AddInt("rows", &rows, "road-grid rows");
  flags.AddInt("cols", &cols, "road-grid columns");
  flags.AddInt("n", &n, "incident profiles");
  flags.AddInt("k", &k, "ambulance staging posts");
  flags.AddInt("seed", &seed, "random seed");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status << "\n" << flags.Usage("road_network");
    return 1;
  }

  auto graph = ukc::uncertain::GenerateGridGraph(
      static_cast<int>(rows), static_cast<int>(cols), /*min_weight=*/0.4,
      /*max_weight=*/2.5, static_cast<uint64_t>(seed));
  if (!graph.ok()) {
    std::cerr << graph.status() << "\n";
    return 1;
  }
  std::cout << "Road network: " << (*graph)->Name() << "\n";

  auto dataset = ukc::uncertain::GenerateMetricInstance(
      *graph, static_cast<size_t>(n), /*z=*/4, /*locality_scale=*/3.0,
      ukc::uncertain::ProbabilityShape::kRandom, static_cast<uint64_t>(seed) + 1);
  if (!dataset.ok()) {
    std::cerr << dataset.status() << "\n";
    return 1;
  }
  std::cout << "Incident profiles: " << dataset->ToString() << "\n\n";

  ukc::core::UncertainKCenterOptions options;
  options.k = static_cast<size_t>(k);
  options.rule = ukc::cost::AssignmentRule::kOneCenter;
  options.surrogate = ukc::core::SurrogateKind::kOneCenter;
  auto solution = ukc::core::SolveUncertainKCenter(&dataset.value(), options);
  if (!solution.ok()) {
    std::cerr << solution.status() << "\n";
    return 1;
  }

  std::cout << "Staging posts at intersections:";
  for (auto c : solution->centers) std::cout << " " << c;
  std::cout << "\nExpected worst travel distance: " << solution->expected_cost
            << "\n";
  for (const auto& bound : solution->bounds) {
    std::cout << "Guarantee: <= " << bound.factor
              << " x optimal (" << bound.theorem << ")\n";
  }

  // Certified instance lower bound puts the guarantee in context.
  auto lower = ukc::exper::UnrestrictedLowerBound(&dataset.value(),
                                                  static_cast<size_t>(k));
  if (lower.ok() && lower->combined > 0.0) {
    std::cout << "Certified lower bound on the optimum: " << lower->combined
              << "  => this solution is provably within "
              << solution->expected_cost / lower->combined
              << "x of optimal on THIS instance\n";
  }

  // Timing breakdown, since the all-sites P̃ search dominates on graphs.
  const auto& t = solution->timings;
  ukc::TablePrinter timings({"phase", "ms"});
  timings.AddRowValues("P~ surrogates (all-sites search)",
                       t.surrogate_seconds * 1e3);
  timings.AddRowValues("k-center on surrogates", t.clustering_seconds * 1e3);
  timings.AddRowValues("OC assignment", t.assignment_seconds * 1e3);
  timings.AddRowValues("exact cost evaluation", t.evaluation_seconds * 1e3);
  std::cout << "\n";
  timings.Print(std::cout);
  return 0;
}
