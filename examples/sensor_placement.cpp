// Scenario: base-station placement for a field of noisy sensors.
//
//   build/examples/sensor_placement [--n=120] [--k=5] [--noise=0.8]
//
// Each sensor reports its position through a noisy channel, so its true
// location is one of several GPS fixes with confidence weights — an
// uncertain point. We place k base stations so that, in expectation over
// the true positions, the farthest sensor from its station is as close
// as possible. The example compares the paper's pipeline (both
// assignment rules) against the modal-location baseline a naive
// deployment would use, and prints the certified guarantees.

#include <iostream>

#include "baselines/baselines.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/uncertain_kcenter.h"
#include "uncertain/generators.h"

using ukc::FlagParser;
using ukc::TablePrinter;

int main(int argc, char** argv) {
  int64_t n = 120;
  int64_t k = 5;
  double noise = 0.8;
  int64_t seed = 2024;
  FlagParser flags;
  flags.AddInt("n", &n, "number of sensors");
  flags.AddInt("k", &k, "number of base stations");
  flags.AddDouble("noise", &noise, "GPS noise scale (support spread)");
  flags.AddInt("seed", &seed, "random seed");
  if (auto status = flags.Parse(argc, argv); !status.ok()) {
    std::cerr << status << "\n" << flags.Usage("sensor_placement");
    return 1;
  }

  // Sensors cluster around k hot spots; each reports 5 candidate fixes.
  ukc::uncertain::EuclideanInstanceOptions gen;
  gen.n = static_cast<size_t>(n);
  gen.z = 5;
  gen.dim = 2;
  gen.spread = noise;
  gen.shape = ukc::uncertain::ProbabilityShape::kSpiky;  // One confident fix.
  gen.seed = static_cast<uint64_t>(seed);
  auto make = [&] {
    auto dataset = ukc::uncertain::GenerateClusteredInstance(
        gen, static_cast<size_t>(k), /*cluster_stddev=*/0.6);
    if (!dataset.ok()) {
      std::cerr << dataset.status() << "\n";
      std::exit(1);
    }
    return std::move(dataset).value();
  };

  std::cout << "Placing " << k << " base stations for " << n
            << " noisy sensors (noise " << noise << ")\n\n";

  TablePrinter table(
      {"method", "expected worst distance", "guarantee", "theorem"});
  auto run_pipeline = [&](ukc::cost::AssignmentRule rule, const char* label) {
    auto dataset = make();
    ukc::core::UncertainKCenterOptions options;
    options.k = static_cast<size_t>(k);
    options.rule = rule;
    auto solution = ukc::core::SolveUncertainKCenter(&dataset, options);
    if (!solution.ok()) {
      std::cerr << solution.status() << "\n";
      std::exit(1);
    }
    table.AddRow(
        {label, TablePrinter::FormatCell(solution->expected_cost),
         solution->bounds.empty()
             ? "-"
             : TablePrinter::FormatCell(solution->bounds.front().factor) + "x",
         solution->bounds.empty() ? "-" : solution->bounds.front().theorem});
  };
  run_pipeline(ukc::cost::AssignmentRule::kExpectedDistance,
               "paper pipeline, ED rule");
  run_pipeline(ukc::cost::AssignmentRule::kExpectedPoint,
               "paper pipeline, EP rule");

  {
    auto dataset = make();
    ukc::baselines::BaselineOptions options;
    options.k = static_cast<size_t>(k);
    auto modal = ukc::baselines::RunBaseline(
        &dataset, ukc::baselines::BaselineKind::kModalLocation, options);
    if (!modal.ok()) {
      std::cerr << modal.status() << "\n";
      return 1;
    }
    table.AddRow({"modal-fix baseline",
                  TablePrinter::FormatCell(modal->expected_cost), "-", "-"});
  }
  table.Print(std::cout);

  std::cout << "\nThe EP rule's 3+eps guarantee (vs 5+eps for ED) usually "
               "shows up as a lower expected cost; the modal baseline "
               "carries no guarantee and ignores low-confidence fixes "
               "entirely.\n";
  return 0;
}
